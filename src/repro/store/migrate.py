"""JSON point cache → columnar store migration (``repro cache migrate``).

A JSON cache record carries its content key and the denormalized
``(device, n, config)`` inputs, but *not* the spec/calibration payload
the key was hashed from.  Migration therefore re-derives each record's
identity: for every known GPU in the machine registry (at its default
calibration) and every backend, recompute :func:`repro.sweep.keys.
sweep_key` and claim the record iff the key matches bit for bit.  A
record that matches belongs to exactly one ``(spec, cal, n, backend)``
shard; a record that matches nothing — a perturbed-calibration point
from a sensitivity study, a foreign model version, an unknown device —
is counted and left untouched rather than guessed at.

Because JSON floats round-trip via shortest ``repr`` and the store's
float64 columns are binary, a migrated point is bit-identical to both
the original cache record and a fresh recomputation
(``tests/test_store.py`` enforces the latter).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.machines.specs import GPUSpec, MACHINES
from repro.simgpu.calibration import calibration_for
from repro.store.columnar import ColumnarStore, ShardKey, pack_config, shard_key
from repro.sweep.cache import CacheRecord
from repro.sweep.engine import BACKENDS
from repro.sweep.keys import sweep_key

__all__ = ["MigrationReport", "migrate_json_cache"]


@dataclass
class MigrationReport:
    """Outcome of one cache → store migration."""

    scanned: int = 0
    migrated: int = 0
    #: Records whose key matches no registry device at its default
    #: calibration (e.g. sensitivity-study perturbations) — left in the
    #: JSON cache, which remains fully supported.
    skipped_foreign: int = 0
    #: Unreadable/malformed record files.
    skipped_corrupt: int = 0
    #: Shards written, as ``digest -> point count``.
    shards: dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"scanned {self.scanned} cache records: "
            f"{self.migrated} migrated into {len(self.shards)} shards, "
            f"{self.skipped_foreign} foreign (left in JSON cache), "
            f"{self.skipped_corrupt} corrupt",
        ]
        return "\n".join(lines)


def _gpu_registry() -> dict[str, GPUSpec]:
    """Claimable GPUs by full spec name (what cache records carry).

    The union of the in-code machines and the device registry, so
    points cached for a data-file device (``$REPRO_DEVICE_DIR``) are
    claimable too.  A registry that fails to load degrades to the
    in-code set — migration must keep working while the user repairs a
    broken device file.
    """
    from repro.devices.registry import default_registry
    from repro.devices.schema import DeviceError

    by_name = {
        spec.name: spec
        for spec in MACHINES.values()
        if isinstance(spec, GPUSpec)
    }
    try:
        entries = default_registry().entries()
    except DeviceError:
        entries = ()
    for entry in entries:
        if isinstance(entry.spec, GPUSpec):
            by_name.setdefault(entry.spec.name, entry.spec)
    return by_name


def migrate_json_cache(
    cache_root: str | Path,
    store_root: str | Path,
    *,
    backends: tuple[str, ...] = BACKENDS,
) -> MigrationReport:
    """Copy every claimable JSON cache record into a columnar store.

    Idempotent: re-running merges into the existing shards (existing
    rows win on duplicates, and the values are identical anyway).  The
    JSON cache is never modified.
    """
    cache_root = Path(cache_root).expanduser()
    store = ColumnarStore(store_root)
    report = MigrationReport()
    by_name = _gpu_registry()

    # digest -> (ShardKey, row lists) accumulated before one append each.
    groups: dict[str, tuple[ShardKey, list[tuple[int, int, int, float, float]]]] = {}
    for path in sorted(cache_root.glob("??/*.json")):
        report.scanned += 1
        try:
            doc = json.loads(path.read_text())
            if not isinstance(doc, dict):
                raise ValueError("cache record must be a JSON object")
            record = CacheRecord.from_dict(doc)
        except (ValueError, KeyError, TypeError, OSError):
            report.skipped_corrupt += 1
            continue
        claimed = _claim(record, by_name, backends)
        if claimed is None:
            report.skipped_foreign += 1
            continue
        key = claimed
        group = groups.get(key.digest)
        if group is None:
            group = (key, [])
            groups[key.digest] = group
        cfg = record.config
        group[1].append(
            (cfg["bs"], cfg["g"], cfg["r"], record.time_s, record.energy_j)
        )
        report.migrated += 1

    for key, rows in groups.values():
        bs, g, r, time_s, energy_j = (np.array(col) for col in zip(*rows))
        report.shards[key.digest] = store.append(
            key, bs, g, r, time_s, energy_j
        )
    return report


def _claim(
    record: CacheRecord,
    by_name: dict[str, GPUSpec],
    backends: tuple[str, ...],
) -> ShardKey | None:
    """The shard a record provably belongs to, or None."""
    spec = by_name.get(record.device)
    if spec is None:
        return None
    cfg = record.config
    if set(cfg) != {"bs", "g", "r"}:
        return None
    try:
        pack_config(cfg["bs"], cfg["g"], cfg["r"])
    except ValueError:
        return None
    cal = calibration_for(spec)
    for backend in backends:
        key = sweep_key(spec, cal, record.n, cfg, backend=backend)
        if key == record.key:
            return shard_key(spec, cal, record.n, backend=backend)
    return None
