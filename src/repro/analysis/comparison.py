"""Comparison of energy-measurement methods (the paper's [13]).

Lives in :mod:`repro.analysis` because it sits *above* both the
measurement substrate and the device simulators (importing it from
``repro.measurement`` would create an import cycle through the NVML
sensor model).

The paper justifies its methodology by citing Fahad et al. [13], "A
comparative study of methods for measurement of energy of computing":
system-level physical power measurement (WattsUp-class wall meters) is
"the most accurate mainstream method", while on-chip/on-board sensors
(RAPL, NVML) carry systematic errors.

:func:`compare_gpu_methods` and :func:`compare_cpu_methods` reproduce
that study's structure on the simulated platforms: run one workload,
measure its dynamic energy with (a) the wall-meter + HCLWattsUp
pipeline and (b) the on-chip/on-board channel, and report each method's
error against the simulator's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machines.specs import CPUSpec, GPUSpec
from repro.measurement.hclwattsup import HCLWattsUp
from repro.measurement.powermeter import PowerMeter, PowerPhase, PowerTrace
from repro.simcpu.processor import CPURunResult
from repro.simcpu.rapl import RAPLCounters, rapl_energy_j
from repro.simgpu.device import KernelRunResult
from repro.simgpu.nvml import NVMLSensor

__all__ = ["MethodReading", "ComparisonResult", "compare_gpu_methods",
           "compare_cpu_methods"]


@dataclass(frozen=True)
class MethodReading:
    """One measurement method's verdict on one run."""

    method: str
    energy_j: float
    relative_error: float  # vs ground truth, signed


@dataclass(frozen=True)
class ComparisonResult:
    """Ground truth plus every method's reading for one workload."""

    workload: str
    ground_truth_j: float
    readings: tuple[MethodReading, ...]

    def by_method(self, method: str) -> MethodReading:
        for r in self.readings:
            if r.method == method:
                return r
        raise KeyError(f"no reading for method {method!r}")


def _wall_meter_reading(
    node_idle_w: float, duration_s: float, dynamic_w: float, seed: int
) -> float:
    meter = PowerMeter(rng=np.random.default_rng(seed))
    tool = HCLWattsUp(meter, node_idle_w, baseline_seconds=60.0)
    trace = PowerTrace(
        phases=(PowerPhase(duration_s, node_idle_w + dynamic_w),)
    )
    return tool.measure(trace).dynamic_energy_j


def compare_gpu_methods(
    spec: GPUSpec,
    run: KernelRunResult,
    *,
    node_idle_w: float = 110.0,
    host_overhead_w: float = 12.0,
    seed: int = 0,
) -> ComparisonResult:
    """WattsUp-vs-NVML comparison for one GPU kernel run.

    ``host_overhead_w`` is the host-side dynamic activity during the
    kernel (driver polling, PCIe) — visible at the wall, invisible to
    the board sensor.  Ground truth is the node's dynamic energy:
    kernel dynamic power plus host overhead over the run.
    """
    if host_overhead_w < 0:
        raise ValueError("host overhead must be non-negative")
    truth = (run.dynamic_power_w + host_overhead_w) * run.time_s

    wall = _wall_meter_reading(
        node_idle_w, run.time_s, run.dynamic_power_w + host_overhead_w, seed
    )

    sensor = NVMLSensor(spec, seed=seed + 1)
    board_trace = PowerTrace(
        phases=(PowerPhase(run.time_s, run.dynamic_power_w),)
    )
    nvml = sensor.measure_energy_j(board_trace)

    readings = (
        MethodReading("wattsup", wall, (wall - truth) / truth),
        MethodReading("nvml", nvml, (nvml - truth) / truth),
    )
    return ComparisonResult(
        workload=f"{spec.name} matmul N={run.resources.n} "
        f"BS={run.resources.bs}",
        ground_truth_j=truth,
        readings=readings,
    )


def compare_cpu_methods(
    spec: CPUSpec,
    run: CPURunResult,
    *,
    node_idle_w: float = 110.0,
    platform_overhead_w: float = 9.0,
    seed: int = 0,
) -> ComparisonResult:
    """WattsUp-vs-RAPL comparison for one CPU DGEMM run.

    ``platform_overhead_w`` is dynamic consumption outside the RAPL
    domains (fans spinning up, VRM losses, chipset) — at the wall but
    not in any MSR.  Ground truth includes it.
    """
    if platform_overhead_w < 0:
        raise ValueError("platform overhead must be non-negative")
    truth = (run.power.dynamic_w + platform_overhead_w) * run.time_s

    wall = _wall_meter_reading(
        node_idle_w, run.time_s, run.power.dynamic_w + platform_overhead_w,
        seed,
    )

    counters = RAPLCounters(spec)
    before = counters.read()
    counters.advance(run.power, run.time_s)
    after = counters.read()
    pkg_j, dram_j = rapl_energy_j(before, after)
    rapl = pkg_j + dram_j

    readings = (
        MethodReading("wattsup", wall, (wall - truth) / truth),
        MethodReading("rapl", rapl, (rapl - truth) / truth),
    )
    return ComparisonResult(
        workload=f"{spec.name} DGEMM N={run.n} "
        f"p={run.config.groups} t={run.config.threads_per_group}",
        ground_truth_j=truth,
        readings=readings,
    )
