"""Fig. 5: regenerate the CUDA matmul instrument source.

Fig. 5 excerpts the CUDA file the GPU study runs: eight group routines
``dgemmG1..dgemmG8`` and 32 dispatch kernels ``dgemm1..dgemm32``.  The
experiment emits the full (compilable-style) source and reports the
structural statistics the paper's description implies — so the
"figure" is reproduced as a verifiable artifact rather than prose.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.apps.cuda_source import full_source

__all__ = ["Fig5Result", "run"]


@dataclass(frozen=True)
class Fig5Result:
    source: str
    group_routines: int
    dispatch_kernels: int
    sync_calls: int
    lines: int

    def render(self) -> str:
        stats = format_table(
            ["quantity", "value"],
            [
                ("__device__ group routines (paper: dgemmG1..G8)",
                 str(self.group_routines)),
                ("__global__ dispatch kernels (paper: dgemm1..32)",
                 str(self.dispatch_kernels)),
                ("__syncthreads() sites", str(self.sync_calls)),
                ("source lines", str(self.lines)),
            ],
        )
        head = "\n".join(self.source.splitlines()[:40])
        return stats + "\n\nsource head:\n" + head


def run() -> Fig5Result:
    """Regenerate the instrument and collect its structural stats."""
    src = full_source()
    return Fig5Result(
        source=src,
        group_routines=len(re.findall(r"__device__ void dgemmG\d+\(", src)),
        dispatch_kernels=len(re.findall(r"__global__ void dgemm\d+\(", src)),
        sync_calls=src.count("__syncthreads();"),
        lines=len(src.splitlines()),
    )
