"""Bench T1: regenerate Table I (platform specifications)."""

from repro.experiments import table1_specs


def test_table1_specs(benchmark, emit):
    result = benchmark(table1_specs.run)
    emit("table1_specs", result.render())
    assert len(result.rows) > 15
