"""Fig. 3: the DGEMM matrix decomposition, regenerated and verified.

Fig. 3 illustrates the weak-EP application design: A and C partitioned
horizontally among ``p`` threadgroups, B shared, every thread bound to
its own core with an equal workload and no communication.  This
experiment regenerates the figure as a text diagram for a sample
configuration and machine-verifies the constraints for every (p, t)
configuration the Fig. 4 sweep uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.decomposition import (
    DecompositionError,
    decompose,
    verify_weak_ep_constraints,
)
from repro.apps.dgemm_cpu import _factor_pairs

__all__ = ["Fig3Result", "run", "render_diagram"]


def render_diagram(n: int, groups: int, threads_per_group: int) -> str:
    """Text rendering of the Fig. 3 decomposition."""
    assignments = decompose(n, groups, threads_per_group)
    lines = [
        f"N={n}, p={groups} threadgroups x t={threads_per_group} threads",
        "",
        "   A (and C), horizontal slabs          B (shared, read-only)",
    ]
    for g in assignments:
        lines.append(
            f"   +{'-' * 30}+"
            + ("        +------------------+" if g.group == 0 else "")
        )
        for t in g.threads:
            b_col = "        |   all threads    |" if g.group == 0 else ""
            lines.append(
                f"   | P{g.group}.t{t.thread}: rows "
                f"{t.row_start:>6}..{t.row_end:<6} |" + b_col
            )
        if g.group == 0:
            lines.append(f"   |{' ' * 30}|        +------------------+")
    lines.append(f"   +{'-' * 30}+")
    return "\n".join(lines)


@dataclass(frozen=True)
class Fig3Result:
    diagram: str
    configurations_checked: int
    violations: int

    def render(self) -> str:
        return (
            self.diagram
            + f"\n\nweak-EP constraints machine-checked for "
            f"{self.configurations_checked} (p, t) configurations: "
            f"{self.violations} violations"
        )


def run(n: int = 17408) -> Fig3Result:
    """Verify the weak-EP constraints across the Fig. 4 sweep grid."""
    checked = 0
    violations = 0
    for total in (1, 2, 4, 8, 16, 32):
        for p, t in _factor_pairs(total):
            # Use an N divisible by the configuration (the paper picks
            # its matrix sizes to keep the distribution exact).
            n_exact = (n // (p * t)) * (p * t)
            try:
                verify_weak_ep_constraints(n_exact, decompose(n_exact, p, t))
            except DecompositionError:
                violations += 1
            checked += 1
    return Fig3Result(
        diagram=render_diagram(1024, 4, 2),
        configurations_checked=checked,
        violations=violations,
    )
