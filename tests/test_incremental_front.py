"""Property tests: incremental front ≡ batch front, array kernels ≡ points.

Same hand-rolled seeded-random property style as
``tests/test_pareto_properties.py``: every cloud is deterministic in
its seed and includes tie/duplicate regimes.  Two equivalences are
enforced:

* :class:`repro.core.incremental.IncrementalParetoFront` after *any*
  insert sequence (original, shuffled, reversed, adversarially sorted)
  equals ``pareto_front`` / rank 0 of ``nondominated_sort`` over the
  same point multiset — the bench v4 incremental-vs-batch gate in
  test form;
* the array kernels ``front_indices`` / ``front_mask`` select exactly
  the points ``pareto_front`` keeps, in the same order, including
  stable tie-breaking and duplicate collapse.
"""

from __future__ import annotations

import random

import numpy as np

from repro.core.incremental import IncrementalParetoFront
from repro.core.pareto import (
    ParetoPoint,
    front_indices,
    front_mask,
    nondominated_sort,
    pareto_front,
)

SEEDS = range(25)


def random_cloud(seed: int) -> list[ParetoPoint]:
    """Seeded random cloud; regimes force ties and exact duplicates."""
    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, 120))
    regime = seed % 3
    if regime == 0:
        times = rng.uniform(0.1, 10.0, size)
        energies = rng.uniform(1.0, 1000.0, size)
    elif regime == 1:
        times = rng.integers(1, 8, size).astype(float)
        energies = rng.integers(1, 8, size).astype(float)
    else:
        times = np.concatenate([rng.uniform(0.1, 10.0, size), [1.0] * 5])
        energies = np.concatenate([rng.uniform(1.0, 1000.0, size), [5.0] * 5])
    return [
        ParetoPoint(float(t), float(e), config={"i": i})
        for i, (t, e) in enumerate(zip(times, energies))
    ]


def insert_orders(points: list[ParetoPoint], seed: int):
    """Several adversarial insert sequences of the same multiset."""
    shuffled = list(points)
    random.Random(seed).shuffle(shuffled)
    yield points
    yield shuffled
    yield list(reversed(points))
    yield sorted(points, key=lambda p: (-p.time_s, p.energy_j))
    yield sorted(points, key=lambda p: (p.energy_j, p.time_s))


def objectives(points) -> list[tuple[float, float]]:
    return [p.objectives() for p in points]


class TestIncrementalEquivalence:
    def test_any_insert_order_matches_batch_front(self):
        for seed in SEEDS:
            cloud = random_cloud(seed)
            batch = objectives(pareto_front(cloud))
            rank0 = objectives(nondominated_sort(cloud)[0])
            assert batch == rank0  # staircase rank 0 is the front
            for order in insert_orders(cloud, seed):
                inc = IncrementalParetoFront(order)
                assert objectives(inc.points()) == batch, f"seed={seed}"

    def test_invariant_holds_after_every_insert(self):
        for seed in SEEDS:
            inc = IncrementalParetoFront()
            for p in random_cloud(seed):
                inc.insert_point(p)
                times, energies = inc.arrays()
                assert (np.diff(times) > 0).all()
                assert (np.diff(energies) < 0).all()

    def test_incremental_prefix_matches_batch_prefix(self):
        """After every prefix of the stream, the maintained front is
        the batch front of the points seen so far."""
        for seed in SEEDS:
            cloud = random_cloud(seed)
            inc = IncrementalParetoFront()
            for i, p in enumerate(cloud):
                inc.insert_point(p)
                assert objectives(inc.points()) == objectives(
                    pareto_front(cloud[: i + 1])
                )

    def test_duplicate_objectives_keep_first_representative(self):
        inc = IncrementalParetoFront()
        assert inc.insert(1.0, 2.0, config="first")
        assert not inc.insert(1.0, 2.0, config="second")
        assert inc.points()[0].config == "first"
        # pareto_front keeps the first in stable sorted order too.
        pts = [
            ParetoPoint(1.0, 2.0, "first"),
            ParetoPoint(1.0, 2.0, "second"),
        ]
        assert pareto_front(pts)[0].config == "first"

    def test_dominated_query_predicts_insert_without_mutating(self):
        for seed in SEEDS:
            cloud = random_cloud(seed)
            inc = IncrementalParetoFront(cloud[: len(cloud) // 2])
            snapshot = objectives(inc.points())
            for p in cloud[len(cloud) // 2 :]:
                predicted = not inc.dominated(p.time_s, p.energy_j)
                assert objectives(inc.points()) == snapshot or predicted
                accepted = inc.insert_point(p)
                assert accepted == predicted
                snapshot = objectives(inc.points())

    def test_stream_accounting(self):
        cloud = random_cloud(3)
        inc = IncrementalParetoFront()
        joined = inc.extend(cloud)
        assert inc.inserted == len(cloud)
        assert inc.accepted == joined >= len(inc)
        assert len(inc) == len(pareto_front(cloud))

    def test_extend_table_matches_point_inserts(self):
        from repro.sweep.shm import POINT_DTYPE

        for seed in SEEDS:
            cloud = random_cloud(seed)
            table = np.empty(len(cloud), dtype=POINT_DTYPE)
            table["bs"] = np.arange(len(cloud)) % 32 + 1
            table["g"] = 1
            table["r"] = np.arange(len(cloud)) + 1
            table["time_s"] = [p.time_s for p in cloud]
            table["energy_j"] = [p.energy_j for p in cloud]
            inc = IncrementalParetoFront()
            inc.extend_table(table)
            assert objectives(inc.points()) == objectives(pareto_front(cloud))
            for p in inc.points():
                assert set(p.config) == {"bs", "g", "r"}
                assert all(isinstance(v, int) for v in p.config.values())

    def test_iter_len_bool(self):
        inc = IncrementalParetoFront()
        assert not inc and len(inc) == 0 and list(inc) == []
        inc.insert(1.0, 1.0)
        assert inc and len(inc) == 1
        assert [p.objectives() for p in inc] == [(1.0, 1.0)]

    def test_tuple_inputs_coerce(self):
        inc = IncrementalParetoFront([(2.0, 1.0), (1.0, 2.0, {"bs": 4})])
        assert objectives(inc.points()) == [(1.0, 2.0), (2.0, 1.0)]
        assert inc.points()[0].config == {"bs": 4}


class TestArrayKernels:
    def test_front_indices_matches_pareto_front_exactly(self):
        for seed in SEEDS:
            cloud = random_cloud(seed)
            times = np.array([p.time_s for p in cloud])
            energies = np.array([p.energy_j for p in cloud])
            idx = front_indices(times, energies)
            assert objectives([cloud[i] for i in idx]) == objectives(
                pareto_front(cloud)
            )
            # Identity, not just equal objectives: stable tie-breaking
            # selects the same representatives.
            assert [cloud[i].config for i in idx] == [
                p.config for p in pareto_front(cloud)
            ]

    def test_front_mask_marks_the_same_rows(self):
        for seed in SEEDS:
            cloud = random_cloud(seed)
            times = np.array([p.time_s for p in cloud])
            energies = np.array([p.energy_j for p in cloud])
            mask = front_mask(times, energies)
            assert sorted(np.flatnonzero(mask)) == sorted(
                front_indices(times, energies)
            )

    def test_empty_inputs(self):
        assert front_indices([], []).size == 0
        assert front_mask([], []).size == 0
