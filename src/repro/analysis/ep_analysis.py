"""High-level energy-proportionality analysis pipelines.

Glue between the simulators/apps and the core library: run a sweep,
apply the strong/weak EP checks, extract fronts and trade-offs, and
package everything into one result object the experiments and benches
render.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.definitions import (
    StrongEPResult,
    WeakEPResult,
    check_strong_ep,
    check_weak_ep,
)
from repro.core.pareto import ParetoPoint, local_pareto_front, pareto_front
from repro.core.tradeoff import TradeoffEntry, max_energy_saving, tradeoff_table

__all__ = ["StrongEPStudy", "WeakEPStudy", "strong_ep_study", "weak_ep_study"]


@dataclass(frozen=True)
class StrongEPStudy:
    """Strong-EP verdict over a workload sweep on one device."""

    device: str
    work: tuple[float, ...]
    energy_j: tuple[float, ...]
    result: StrongEPResult


@dataclass(frozen=True)
class WeakEPStudy:
    """Weak-EP verdict plus bi-objective analysis of one config sweep.

    Attributes
    ----------
    device:
        Platform label.
    workload:
        Workload identifier (e.g. matrix size N).
    points:
        All evaluated configuration points.
    weak_ep:
        Constancy verdict over the configuration energies.
    front:
        Global Pareto front.
    tradeoffs:
        Trade-off table of the global front.
    headline:
        Max-saving entry (the paper's headline pair).
    local_front:
        Front of the configured sub-region, when a region was given.
    """

    device: str
    workload: int
    points: tuple[ParetoPoint, ...]
    weak_ep: WeakEPResult
    front: tuple[ParetoPoint, ...]
    tradeoffs: tuple[TradeoffEntry, ...]
    headline: TradeoffEntry
    local_front: tuple[ParetoPoint, ...] | None = None
    local_headline: TradeoffEntry | None = None


def strong_ep_study(
    device: str, work: Sequence[float], energy_j: Sequence[float]
) -> StrongEPStudy:
    """Apply the strong-EP linearity check to one device's sweep."""
    return StrongEPStudy(
        device=device,
        work=tuple(float(w) for w in work),
        energy_j=tuple(float(e) for e in energy_j),
        result=check_strong_ep(work, energy_j),
    )


def weak_ep_study(
    device: str,
    workload: int,
    points: Sequence[ParetoPoint],
    *,
    region: Callable[[ParetoPoint], bool] | None = None,
) -> WeakEPStudy:
    """Weak-EP + Pareto analysis of one configuration sweep.

    ``region`` optionally selects the sub-space for a *local* front
    (e.g. ``lambda p: p.config["bs"] <= 31`` for the K40c analysis).
    """
    pts = list(points)
    if not pts:
        raise ValueError("empty sweep")
    weak = check_weak_ep([p.energy_j for p in pts])
    front = pareto_front(pts)
    local = None
    local_headline = None
    if region is not None:
        local = tuple(local_pareto_front(pts, region))
        region_points = [p for p in pts if region(p)]
        if region_points:
            local_headline = max_energy_saving(region_points)
    return WeakEPStudy(
        device=device,
        workload=workload,
        points=tuple(pts),
        weak_ep=weak,
        front=tuple(front),
        tradeoffs=tuple(tradeoff_table(pts)),
        headline=max_energy_saving(pts),
        local_front=local,
        local_headline=local_headline,
    )
