"""Calibration harness for the GPU simulators.

Prints the shape statistics DESIGN.md's acceptance criteria reference,
for the current constants in ``repro.simgpu.calibration``:

* global/local Pareto front sizes per (device, N),
* max energy saving and its performance degradation,
* dynamic-power range across the configuration sweep.

Run after editing calibration constants:

    python tools/calibrate_gpu.py
"""

from __future__ import annotations

from repro.apps.matmul_gpu import MatmulGPUApp
from repro.core import (
    local_pareto_front,
    max_energy_saving,
    pareto_front,
    tradeoff_table,
)
from repro.machines import K40C, P100


def describe(spec, n_values, t_products=24):
    app = MatmulGPUApp(spec, total_products=t_products)
    print(f"\n===== {spec.name} =====")
    for n in n_values:
        points = app.sweep_points(n)
        front = pareto_front(points)
        entry = max_energy_saving(points)
        local = local_pareto_front(points, lambda p: p.config["bs"] <= 31)
        local_entry = max_energy_saving([p for p in points if p.config["bs"] <= 31])
        powers = [p.energy_j / p.time_s for p in points]
        fastest = min(points, key=lambda p: p.time_s)
        print(
            f"N={n}: {len(points)} cfgs | global front {len(front)} pts "
            f"(max save {entry.energy_saving:.1%} @ {entry.perf_degradation:.1%}) | "
            f"local(BS<=31) {len(local)} pts "
            f"(save {local_entry.energy_saving:.1%} @ {local_entry.perf_degradation:.1%}) | "
            f"Pdyn {min(powers):.0f}-{max(powers):.0f} W | "
            f"fastest cfg {fastest.config}"
        )
        for p in front:
            print(
                f"    front: {p.config}  t={p.time_s:.2f}s E={p.energy_j:.0f}J "
                f"P={p.energy_j/p.time_s:.0f}W"
            )


if __name__ == "__main__":
    describe(K40C, [8704, 10240])
    describe(P100, [10240, 14336, 18432])
