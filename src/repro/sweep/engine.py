"""The sweep engine: parallel fan-out + content-addressed caching.

:class:`SweepEngine` evaluates ``(device, N, config)`` points with
three guarantees:

1. **Determinism** — results are returned in the request's
   configuration order, and the parallel path (``jobs > 1``) computes
   every point with the same pure call the serial path makes, so the
   two are bit-identical (``tests/test_sweep_parity.py`` enforces
   this; cache round-trips are exact because JSON floats use
   shortest-round-trip ``repr``).
2. **Caching** — with a :class:`SweepCache` attached, every computed
   point is persisted under its content key and never recomputed, so
   repeated experiment/benchmark runs and interrupted sweeps only pay
   for the points they have not seen.
3. **Accounting** — :attr:`stats` reports how many points were
   requested, served from cache, and actually computed; a warm-cache
   rerun must show ``computed == 0``.

A third execution path, ``backend="vectorized"``, evaluates every
missing point of a sweep in one NumPy batch
(:mod:`repro.simgpu.batch`).  It is opt-in: the scalar path stays the
reference, and vectorized results are cached under backend-tagged keys
(they match the reference to ≤ 1e-9 relative error, not bit-exactly),
so reference cache entries and golden snapshots are never mixed with
batch results.

Noise-injected evaluations (``rng`` trials) never go through the
engine: the cache stores only the deterministic model output.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro import obs
from repro.apps.matmul_gpu import MatmulConfig
from repro.core.pareto import ParetoPoint
from repro.machines.specs import GPUSpec
from repro.simgpu.calibration import GPUCalibration
from repro.sweep.cache import CacheRecord, SweepCache
from repro.sweep.keys import MODEL_VERSION, sweep_key
from repro.sweep.plan import SweepRequest
from repro.sweep.worker import evaluate_chunk, evaluate_chunk_timed, evaluate_one

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.columnar import ColumnarStore

__all__ = [
    "SweepEngine",
    "SweepStats",
    "BACKENDS",
    "MODES",
    "PARALLEL_MIN_POINTS",
    "chunk_size_for",
]

#: Execution paths ``SweepEngine`` can compute missing points with.
#: ``scalar`` is the reference (``GPUDevice.run_matmul`` per point,
#: optionally fanned out over processes); ``vectorized`` evaluates the
#: whole missing set in one NumPy pass (:mod:`repro.simgpu.batch`).
BACKENDS = ("scalar", "vectorized")

#: Scalar-backend execution-mode policies (see :class:`SweepEngine`).
MODES = ("auto", "serial", "parallel")

#: Minimum missing-point count before ``mode="auto"`` fans a scalar
#: sweep out over a process pool.  Measured heuristic: one scalar point
#: costs ~50 µs while ``ProcessPoolExecutor`` startup plus per-chunk
#: pickling costs tens of milliseconds, so the pool only amortizes
#: above roughly 500-1000 points per worker — far above the paper's
#: 146-point grids, which is why ``BENCH_sweep.json`` showed the pool
#: path *slower* than serial there.  Below this threshold auto mode
#: runs serially.
PARALLEL_MIN_POINTS = 512

#: Adaptive chunk-size bounds for the process-pool path.
MIN_CHUNK_SIZE = 4
MAX_CHUNK_SIZE = 256
#: Target chunks per worker: > 1 so stragglers rebalance, small enough
#: that per-chunk pickling stays amortized.
CHUNKS_PER_WORKER = 4


def chunk_size_for(n_points: int, jobs: int) -> int:
    """Configurations per process-pool task for an ``n_points`` sweep.

    Scales with the sweep instead of a hard-coded constant: aim for
    :data:`CHUNKS_PER_WORKER` chunks per worker (load balancing),
    floored at :data:`MIN_CHUNK_SIZE` so tiny chunks don't drown in
    pickling overhead and capped at :data:`MAX_CHUNK_SIZE` so huge
    sweeps still rebalance across stragglers.
    """
    if n_points <= 0:
        return MIN_CHUNK_SIZE
    target = math.ceil(n_points / (max(1, jobs) * CHUNKS_PER_WORKER))
    return max(MIN_CHUNK_SIZE, min(MAX_CHUNK_SIZE, target))


@dataclass
class SweepStats:
    """Point-level accounting of one engine's lifetime."""

    requested: int = 0
    cache_hits: int = 0
    computed: int = 0
    #: Execution path of the most recent compute ("serial",
    #: "process-pool" or "vectorized"); None until something computes.
    last_mode: str | None = None
    #: Points computed per execution path over the lifetime.
    mode_points: dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requested if self.requested else 0.0

    def record_mode(self, mode: str, points: int) -> None:
        self.last_mode = mode
        self.mode_points[mode] = self.mode_points.get(mode, 0) + points
        obs.count(f"sweep.mode.{mode}", points)


class SweepEngine:
    """Evaluate sweeps in parallel with an optional persistent cache.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs serially in-process
        — the deterministic reference path; ``> 1`` fans chunks of
        missing points out over a ``ProcessPoolExecutor``.
    cache_dir / cache:
        Attach a persistent :class:`SweepCache` (by directory, or an
        instance).  Without either, every point is computed fresh.
    store_dir / store:
        Attach a columnar :class:`repro.store.ColumnarStore` instead of
        the per-point JSON cache: hits and misses of a whole request
        are partitioned in one vectorized pass against the request's
        shard, and computed points are appended shard-at-a-time.
        Mutually exclusive with ``cache``/``cache_dir``.
    backend:
        Execution path for missing points (:data:`BACKENDS`).
        ``"scalar"`` (default) is the reference path; ``"vectorized"``
        evaluates all missing points in one NumPy batch — roughly an
        order of magnitude faster, agreeing with the reference to
        ≤ 1e-9 relative error.  Vectorized results are cached under
        backend-tagged keys so the reference cache and the golden
        snapshots stay untouched.
    mode:
        Scalar-backend execution-mode policy (:data:`MODES`).
        ``"auto"`` (default) fans out over the process pool only when
        the missing-point count reaches :data:`PARALLEL_MIN_POINTS`
        (pool startup dominates below it — see the constant's
        heuristic); ``"serial"`` never uses the pool; ``"parallel"``
        always fans out when ``jobs > 1`` and there is more than one
        chunk.  The chosen path of the last compute is recorded in
        ``stats.last_mode``.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        cache: SweepCache | None = None,
        store_dir: str | Path | None = None,
        store: "ColumnarStore | None" = None,
        backend: str = "scalar",
        mode: str = "auto",
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if cache is not None and cache_dir is not None:
            raise ValueError("pass cache_dir or cache, not both")
        if store is not None and store_dir is not None:
            raise ValueError("pass store_dir or store, not both")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}: expected one of "
                f"{', '.join(BACKENDS)}"
            )
        if mode not in MODES:
            raise ValueError(
                f"unknown mode {mode!r}: expected one of {', '.join(MODES)}"
            )
        self.jobs = jobs
        self.backend = backend
        self.mode = mode
        self.cache = (
            cache if cache is not None
            else SweepCache(cache_dir) if cache_dir is not None
            else None
        )
        if store is None and store_dir is not None:
            from repro.store.columnar import ColumnarStore

            store = ColumnarStore(store_dir)
        self.store = store
        if self.cache is not None and self.store is not None:
            raise ValueError(
                "attach a JSON cache or a columnar store, not both"
            )
        self.stats = SweepStats()

    # -- single points ------------------------------------------------------

    def evaluate(
        self,
        device: str | GPUSpec,
        n: int,
        config: MatmulConfig | dict[str, int],
        *,
        cal: GPUCalibration | None = None,
    ) -> ParetoPoint:
        """Evaluate one configuration (always in-process, cached)."""
        if isinstance(config, dict):
            config = MatmulConfig(
                bs=config["bs"], g=config["g"], r=config["r"]
            )
        req = SweepRequest(device=device, n=n, cal=cal)
        return self.evaluate_configs(req, [config])[0]

    # -- sweeps -------------------------------------------------------------

    def sweep(
        self,
        device: str | GPUSpec,
        n: int,
        *,
        total_products: int = 24,
        min_bs: int | None = None,
        cal: GPUCalibration | None = None,
    ) -> list[ParetoPoint]:
        """Evaluate every valid configuration for matrix size N.

        Drop-in replacement for
        :meth:`repro.apps.matmul_gpu.MatmulGPUApp.sweep_points`: same
        enumeration, same order, same values.
        """
        req = SweepRequest(
            device=device,
            n=n,
            total_products=total_products,
            min_bs=min_bs,
            cal=cal,
        )
        return self.evaluate_configs(req, req.configs())

    def sweep_many(
        self, requests: Sequence[SweepRequest]
    ) -> list[list[ParetoPoint]]:
        """Evaluate several sweeps; results match request order."""
        return [self.evaluate_configs(r, r.configs()) for r in requests]

    def evaluate_configs(
        self, request: SweepRequest, configs: Sequence[MatmulConfig]
    ) -> list[ParetoPoint]:
        """Evaluate an explicit configuration list of one request.

        The returned list is index-aligned with ``configs`` regardless
        of parallelism or cache state.
        """
        spec = request.spec
        cal = request.calibration
        n = request.n
        self.stats.requested += len(configs)
        obs.count("sweep.points.requested", len(configs))
        with obs.span(
            "engine.evaluate_configs",
            device=spec.name,
            n=n,
            backend=self.backend,
            points=len(configs),
        ):
            if self.store is not None:
                return self._evaluate_with_store(spec, cal, n, configs)

            keys: list[str | None] = [None] * len(configs)
            objectives: list[tuple[float, float] | None] = [None] * len(configs)
            missing: list[int] = []
            hits = 0
            for i, cfg in enumerate(configs):
                if self.cache is not None:
                    key = sweep_key(
                        spec, cal, n, cfg.as_dict(), backend=self.backend
                    )
                    keys[i] = key
                    record = self.cache.get(key)
                    if record is not None:
                        objectives[i] = (record.time_s, record.energy_j)
                        hits += 1
                        continue
                missing.append(i)
            self.stats.cache_hits += hits
            obs.count("sweep.cache.hits", hits)
            obs.count("sweep.cache.misses", len(missing))

            if missing:
                computed = self._compute(
                    spec, cal, n, [configs[i] for i in missing]
                )
                self.stats.computed += len(missing)
                obs.count("sweep.points.computed", len(missing))
                for i, obj in zip(missing, computed):
                    objectives[i] = obj
                    if self.cache is not None:
                        self.cache.put(
                            CacheRecord(
                                key=keys[i],  # type: ignore[arg-type]
                                device=spec.name,
                                n=n,
                                config=configs[i].as_dict(),
                                time_s=obj[0],
                                energy_j=obj[1],
                                model_version=MODEL_VERSION,
                            )
                        )

            return [
                ParetoPoint(
                    time_s=obj[0], energy_j=obj[1], config=cfg.as_dict()
                )
                for cfg, obj in zip(configs, objectives)
            ]

    # -- columnar-store path ------------------------------------------------

    def _evaluate_with_store(
        self,
        spec: GPUSpec,
        cal: GPUCalibration,
        n: int,
        configs: Sequence[MatmulConfig],
    ) -> list[ParetoPoint]:
        """Hit/miss partition and fill against the columnar store.

        One vectorized lookup per request instead of one file read per
        point; computed misses are appended to the request's shard in a
        single atomic write.
        """
        import numpy as np

        from repro.store.columnar import pack_configs, shard_key

        key = shard_key(spec, cal, n, backend=self.backend)
        packed, bs, g, r = pack_configs(configs)
        times, energies, hit = self.store.lookup(key, packed)
        miss = np.flatnonzero(~hit)
        self.stats.cache_hits += int(hit.sum())
        obs.count("sweep.cache.hits", int(hit.sum()))
        obs.count("sweep.cache.misses", int(miss.size))
        if miss.size:
            computed = self._compute(
                spec, cal, n, [configs[i] for i in miss]
            )
            self.stats.computed += miss.size
            obs.count("sweep.points.computed", int(miss.size))
            t_new = np.array([obj[0] for obj in computed])
            e_new = np.array([obj[1] for obj in computed])
            times[miss] = t_new
            energies[miss] = e_new
            self.store.append(
                key, bs[miss], g[miss], r[miss], t_new, e_new
            )
        return [
            ParetoPoint(time_s=t, energy_j=e, config=cfg.as_dict())
            for cfg, t, e in zip(configs, times.tolist(), energies.tolist())
        ]

    # -- computation --------------------------------------------------------

    def _use_pool(self, n_points: int) -> bool:
        """Whether the scalar path should fan out over the pool."""
        if self.jobs == 1 or self.mode == "serial":
            return False
        if n_points <= chunk_size_for(n_points, self.jobs):
            return False  # a single chunk gains nothing from a pool
        if self.mode == "parallel":
            return True
        return n_points >= PARALLEL_MIN_POINTS

    def _compute(
        self,
        spec: GPUSpec,
        cal: GPUCalibration,
        n: int,
        configs: Sequence[MatmulConfig],
    ) -> list[tuple[float, float]]:
        if self.backend == "vectorized":
            from repro.simgpu.batch import evaluate_configs_batch

            self.stats.record_mode("vectorized", len(configs))
            return evaluate_configs_batch(spec, cal, n, configs)
        if not self._use_pool(len(configs)):
            self.stats.record_mode("serial", len(configs))
            return [evaluate_one(spec, cal, n, c) for c in configs]
        self.stats.record_mode("process-pool", len(configs))
        size = chunk_size_for(len(configs), self.jobs)
        chunks = [
            configs[i : i + size] for i in range(0, len(configs), size)
        ]
        tel = obs.get_telemetry()
        with obs.span(
            "engine.pool_fill",
            device=spec.name,
            n=n,
            jobs=self.jobs,
            chunks=len(chunks),
            points=len(configs),
        ):
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                results: list[tuple[float, float]] = []
                if tel.enabled:
                    # Workers cannot reach the parent registry, so they
                    # report their own wall time and the parent
                    # aggregates it here (chunk count, per-chunk wall
                    # histogram, total worker-side compute seconds).
                    futures = [
                        pool.submit(evaluate_chunk_timed, spec, cal, n, chunk)
                        for chunk in chunks
                    ]
                    for future in futures:
                        values, wall_s = future.result()
                        results.extend(values)
                        tel.count("sweep.worker.chunks")
                        tel.observe("sweep.worker.chunk_wall_s", wall_s)
                    tel.count("sweep.worker.points", len(configs))
                else:
                    futures = [
                        pool.submit(evaluate_chunk, spec, cal, n, chunk)
                        for chunk in chunks
                    ]
                    for future in futures:
                        results.extend(future.result())
        return results
