"""Event vectors and compound-application composition.

The theory of energy predictive models of computing [33] reasons about
*base* applications and *compound* applications (the serial execution
of two base applications).  Its additivity property: a performance
event is a sound linear-model variable only if its count for a
compound application equals the sum of its counts for the base
applications.

This module provides the small algebra those analyses need: profiled
application records carrying an event-count vector plus the measured
dynamic energy, and the serial composition operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

__all__ = ["ApplicationProfile", "compose_serial"]


@dataclass(frozen=True)
class ApplicationProfile:
    """One profiled application run.

    Attributes
    ----------
    name:
        Label ("base A", "compound A;B", ...).
    events:
        Event name → count, as *reported* by the profiling interface
        (which may have overflowed — see ``repro.simgpu.cupti``).
    energy_j:
        Measured dynamic energy of the run.
    time_s:
        Measured execution time of the run.
    """

    name: str
    events: Mapping[str, float]
    energy_j: float
    time_s: float

    def __post_init__(self) -> None:
        if self.energy_j < 0 or self.time_s <= 0:
            raise ValueError("energy must be >= 0 and time > 0")
        object.__setattr__(self, "events", MappingProxyType(dict(self.events)))

    def event(self, name: str) -> float:
        try:
            return self.events[name]
        except KeyError:
            raise KeyError(
                f"profile {self.name!r} has no event {name!r}"
            ) from None


def compose_serial(
    a: ApplicationProfile,
    b: ApplicationProfile,
    *,
    name: str | None = None,
    event_excess: Mapping[str, float] | None = None,
    energy_excess_j: float = 0.0,
) -> ApplicationProfile:
    """Profile of the compound application "run a, then b".

    On an ideal machine, counts and energy add exactly.  Real machines
    deviate: ``event_excess`` injects per-event deviations and
    ``energy_excess_j`` an energy deviation (e.g. the paper's 58 W
    auxiliary component activity), letting tests and experiments build
    compounds with controlled non-additivity.
    """
    events: dict[str, float] = {}
    for key in set(a.events) | set(b.events):
        events[key] = a.events.get(key, 0.0) + b.events.get(key, 0.0)
        if event_excess and key in event_excess:
            events[key] += event_excess[key]
    return ApplicationProfile(
        name=name if name is not None else f"{a.name};{b.name}",
        events=events,
        energy_j=a.energy_j + b.energy_j + energy_excess_j,
        time_s=a.time_s + b.time_s,
    )
