"""GPU simulator substrate: occupancy, warp efficiency, memory
hierarchy, kernel pipeline timing, component power, DVFS, CUPTI."""

from repro.simgpu.batch import (
    BatchRunResult,
    batch_run_matmul,
    evaluate_configs_batch,
)
from repro.simgpu.calibration import (
    GPUCalibration,
    K40C_CAL,
    P100_CAL,
    calibration_for,
)
from repro.simgpu.cupti import EVENT_NAMES, CuptiProfiler, EventReading
from repro.simgpu.device import GPUDevice, KernelRunResult
from repro.simgpu.dvfs import OperatingPoint, solve_operating_clock
from repro.simgpu.kernel import (
    KernelResources,
    avg_rows_per_warp,
    matmul_kernel_resources,
    max_group_size,
    shared_mem_per_block,
)
from repro.simgpu.memhier import TrafficModel, coalescing_efficiency, matmul_traffic
from repro.simgpu.nvml import NVMLSample, NVMLSensor
from repro.simgpu.occupancy import Occupancy, compute_occupancy
from repro.simgpu.power import PowerBreakdown, aux_decay, kernel_power
from repro.simgpu.roofline import RooflinePlacement, classify_matmul
from repro.simgpu.warps import lane_efficiency, smem_replay_factor, warps_per_block
from repro.simgpu.waves import WaveAnalysis, analyze_waves

__all__ = [
    "BatchRunResult",
    "batch_run_matmul",
    "evaluate_configs_batch",
    "GPUCalibration",
    "K40C_CAL",
    "P100_CAL",
    "calibration_for",
    "CuptiProfiler",
    "EventReading",
    "EVENT_NAMES",
    "GPUDevice",
    "KernelRunResult",
    "OperatingPoint",
    "solve_operating_clock",
    "KernelResources",
    "avg_rows_per_warp",
    "matmul_kernel_resources",
    "max_group_size",
    "shared_mem_per_block",
    "TrafficModel",
    "coalescing_efficiency",
    "matmul_traffic",
    "NVMLSample",
    "NVMLSensor",
    "Occupancy",
    "compute_occupancy",
    "RooflinePlacement",
    "classify_matmul",
    "PowerBreakdown",
    "aux_decay",
    "kernel_power",
    "lane_efficiency",
    "smem_replay_factor",
    "warps_per_block",
    "WaveAnalysis",
    "analyze_waves",
]
