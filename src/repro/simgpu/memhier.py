"""GPU memory-hierarchy model: coalescing, L2 reuse, DRAM traffic.

The blocked matmul's global-memory behaviour as a function of the tile
dimension BS:

* Each block loads ``ceil(N/BS)`` tile pairs of ``BS²`` doubles; across
  the ``ceil(N/BS)²`` blocks the total element loads are
  ``2·N³/BS`` — the classic ``1/BS`` traffic reduction from shared-
  memory blocking.
* Each warp-row load touches ``8·BS`` contiguous bytes; DRAM moves
  fixed-size sectors, so the *fetched* bytes are rounded up to sector
  multiples.  Coalescing efficiency therefore steps at sector
  boundaries — jagged in BS.
* Tiles of B are reused by the blocks of one grid row; a fraction of
  those re-loads hit in L2, bounded by how much of a tile working set
  the L2 covers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.machines.specs import GPUSpec

__all__ = ["coalescing_efficiency", "TrafficModel", "matmul_traffic"]


def coalescing_efficiency(row_bytes: int, sector_bytes: int) -> float:
    """Useful fraction of DRAM sectors fetched for one contiguous row.

    ``row_bytes`` contiguous useful bytes require
    ``ceil(row_bytes / sector_bytes)`` sectors; efficiency is the useful
    fraction ∈ (0, 1].
    """
    if row_bytes < 1 or sector_bytes < 1:
        raise ValueError("byte counts must be positive")
    sectors = math.ceil(row_bytes / sector_bytes)
    return row_bytes / (sectors * sector_bytes)


@dataclass(frozen=True)
class TrafficModel:
    """Global-memory traffic of one matmul product on one GPU.

    Attributes
    ----------
    useful_read_bytes:
        Algorithmic element loads × 8 bytes (before coalescing/L2).
    l2_hit_fraction:
        Fraction of tile loads served by L2.
    dram_read_bytes:
        Bytes actually moved from DRAM (after coalescing rounding and
        L2 hits).
    dram_write_bytes:
        Result-matrix writeback bytes.
    coalescing:
        Row coalescing efficiency used.
    """

    useful_read_bytes: float
    l2_hit_fraction: float
    dram_read_bytes: float
    dram_write_bytes: float
    coalescing: float

    @property
    def total_dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes


@lru_cache(maxsize=4096)
def matmul_traffic(
    spec: GPUSpec, n: int, bs: int, *, l2_hit_cap: float = 0.5
) -> TrafficModel:
    """Traffic of one ``N×N`` double-precision product with tile BS.

    ``l2_hit_cap`` bounds the L2 hit fraction; it is a per-device
    calibration knob (streaming-friendly replacement policies retain
    less of the B strip).

    Memoized: the model is a pure function of hashable frozen inputs,
    and R-repeats / repeated sweeps of the same ``(N, BS)`` re-request
    the identical traffic model.
    """
    if n < 1:
        raise ValueError("N must be positive")
    if bs < 1:
        raise ValueError("BS must be positive")
    if not (0.0 <= l2_hit_cap <= 1.0):
        raise ValueError("l2_hit_cap must be in [0, 1]")
    tiles_per_dim = math.ceil(n / bs)
    # Element loads: each block walks tiles_per_dim tile pairs of BS²
    # elements; grid has tiles_per_dim² blocks.
    element_loads = 2.0 * tiles_per_dim**3 * bs * bs
    useful_read = element_loads * 8.0

    coal = coalescing_efficiency(8 * bs, spec.dram_sector_bytes)
    fetched = useful_read / coal

    # L2 reuse: the blocks of one grid row share the same column strip
    # of B (N·BS·8 bytes per tile step).  The hit fraction is the share
    # of that strip the L2 retains, at most 50% of the combined A+B
    # stream (A tiles are block-private and stream through).
    strip_bytes = n * bs * 8.0
    l2_hit = min(l2_hit_cap, l2_hit_cap * spec.l2_bytes / strip_bytes)

    dram_read = fetched * (1.0 - l2_hit)
    dram_write = float(n) * n * 8.0  # one C writeback per product
    return TrafficModel(
        useful_read_bytes=useful_read,
        l2_hit_fraction=l2_hit,
        dram_read_bytes=dram_read,
        dram_write_bytes=dram_write,
        coalescing=coal,
    )
