"""Bench F7: regenerate Fig. 7 (K40c nonproportionality, local fronts)."""

from repro.analysis.goldens import render_fig7_snapshot
from repro.experiments import fig7_k40c_pareto


def test_fig7_k40c_pareto(benchmark, emit):
    result = benchmark(fig7_k40c_pareto.run)
    emit("fig7_k40c_pareto", render_fig7_snapshot(result))
    assert all(len(s.front) == 1 for s in result.studies)
