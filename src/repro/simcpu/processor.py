"""Multicore CPU facade: run a DGEMM configuration, report the
(time, utilization, power, energy) tuple the paper's Fig. 4 plots.

Performance model (roofline with SMT and shape effects):

* Each thread computes ``2·N³/(p·t)`` flops at
  ``clock · flops_per_cycle · eff`` where ``eff`` combines the BLAS
  library's peak efficiency, a skinny-block penalty when the
  per-thread row block is shallow, and the partition type.
* Two hyperthreads sharing a physical core share its ports: combined
  throughput is ``smt_throughput`` of a solo thread (clamped to the
  core's peak).
* The aggregate is capped by the DRAM roofline
  (``traffic_bytes_per_flop``); the plateau near 700 GFLOPs in Fig. 4
  is the compute roofline of 24 Haswell cores at MKL efficiency.
* Wall time is the slowest thread's completion
  (:mod:`repro.simcpu.utilization` provides the deterministic
  contention imbalance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machines.specs import CPUSpec
from repro.simcpu.calibration import (
    CPUCalibration,
    HASWELL_CAL,
    LIBRARIES,
    LibraryProfile,
)
from repro.simcpu.power import CPUPowerBreakdown, cpu_power
from repro.simcpu.topology import Placement, place_threads
from repro.simcpu.utilization import (
    UtilizationVector,
    contention_jitter,
    utilization_vector,
)

__all__ = ["DGEMMConfig", "CPURunResult", "MulticoreCPU"]

#: Admissible partition types ("type of matrix partitioning" in Fig. 4).
PARTITIONS = ("row", "col", "block")


@dataclass(frozen=True)
class DGEMMConfig:
    """One application configuration of the parallel DGEMM.

    Attributes
    ----------
    partition:
        Matrix partitioning type: ``"row"`` (the paper's Fig. 3
        decomposition), ``"col"``, or ``"block"`` (2-D).
    groups:
        Number of threadgroups ``p``.
    threads_per_group:
        Threads per group ``t``; total threads = ``p·t``.
    library:
        ``"mkl"`` or ``"openblas"``.
    """

    partition: str
    groups: int
    threads_per_group: int
    library: str = "mkl"

    def __post_init__(self) -> None:
        if self.partition not in PARTITIONS:
            raise ValueError(
                f"partition must be one of {PARTITIONS}, got {self.partition!r}"
            )
        if self.groups < 1 or self.threads_per_group < 1:
            raise ValueError("groups and threads_per_group must be positive")
        if self.library not in LIBRARIES:
            raise ValueError(f"unknown library {self.library!r}")

    @property
    def n_threads(self) -> int:
        return self.groups * self.threads_per_group

    def key(self) -> str:
        return (
            f"{self.library}:{self.partition}:p{self.groups}:t{self.threads_per_group}"
        )


@dataclass(frozen=True)
class CPURunResult:
    """Modelled outcome of one DGEMM run."""

    time_s: float
    dynamic_energy_j: float
    gflops: float
    avg_utilization: float  # percent, 0..100
    utilization: UtilizationVector
    power: CPUPowerBreakdown
    placement: Placement
    config: DGEMMConfig
    n: int


#: Partition-type multipliers: (efficiency, traffic, page-walk factor).
#: Column partitioning strides accesses across pages (heavy walk cost);
#: 2-D blocks tile the address space and walk least.
_PARTITION_FACTORS = {
    "row": (1.00, 1.00, 1.0),
    "col": (0.97, 1.08, 3.0),
    "block": (0.99, 0.88, 0.6),
}


class MulticoreCPU:
    """Analytical model of the dual-socket Haswell node running DGEMM."""

    def __init__(self, spec: CPUSpec, cal: CPUCalibration | None = None) -> None:
        self.spec = spec
        self.cal = cal if cal is not None else HASWELL_CAL

    # -- throughput ---------------------------------------------------------

    def _shape_efficiency(self, lib: LibraryProfile, rows_per_thread: float) -> float:
        """Efficiency including the skinny-block penalty."""
        if rows_per_thread >= lib.skinny_rows:
            return lib.peak_efficiency
        frac = max(rows_per_thread - 1.0, 0.0) / (lib.skinny_rows - 1.0)
        return lib.peak_efficiency * (lib.skinny_floor + (1.0 - lib.skinny_floor) * frac)

    def aggregate_flops(
        self, n: int, config: DGEMMConfig, *, freq_scale: float = 1.0
    ) -> tuple[float, Placement]:
        """Aggregate DP flop rate (flops/s) and the thread placement."""
        spec, cal = self.spec, self.cal
        lib = LIBRARIES[config.library]
        placement = place_threads(spec, config.n_threads)
        eff_part, traffic_part, _ = _PARTITION_FACTORS[config.partition]

        rows = n / config.n_threads
        eff = self._shape_efficiency(lib, rows) * eff_part
        core_peak = freq_scale * spec.base_clock_hz * spec.dp_flops_per_cycle

        # Count threads per physical core to apply the SMT share.
        from collections import Counter

        per_core = Counter(c.physical_core for c in placement.cpus)
        agg = 0.0
        for _, cnt in per_core.items():
            if cnt == 1:
                agg += core_peak * eff
            else:
                agg += min(core_peak, core_peak * eff * cal.smt_throughput)

        # DRAM roofline.
        traffic_per_flop = cal.traffic_bytes_per_flop * traffic_part
        demand = agg * traffic_per_flop
        if demand > spec.mem_bandwidth_bps:
            agg = spec.mem_bandwidth_bps / traffic_per_flop
        return agg, placement

    # -- public API ----------------------------------------------------------

    def run_dgemm(
        self,
        n: int,
        config: DGEMMConfig,
        *,
        rng: np.random.Generator | None = None,
        freq_scale: float = 1.0,
    ) -> CPURunResult:
        """Model one run of the configuration on matrix size N.

        With ``rng`` supplied, wall time gets run-to-run jitter on top
        of the deterministic contention imbalance (the systematic
        component stays fixed per configuration, as on a real machine).

        ``freq_scale`` applies DVFS: the core clock is scaled to
        ``freq_scale × base`` (the ``userspace`` governor / ``cpupower``
        path the system-level methods of [16]-[18] drive).  Compute
        throughput scales with f; core-clocked power scales ≈ f^2.5
        (V²f along the voltage ladder); memory-side power and the
        memory roofline do not scale.
        """
        if n < 1:
            raise ValueError("N must be positive")
        if not (0.4 <= freq_scale <= 1.1):
            raise ValueError(
                "freq_scale must lie in the part's DVFS range [0.4, 1.1]"
            )
        spec, cal = self.spec, self.cal
        agg_flops, placement = self.aggregate_flops(
            n, config, freq_scale=freq_scale
        )

        jitter = contention_jitter(
            config.key(), config.n_threads, config.groups, cal
        )
        util = utilization_vector(spec, placement, jitter)

        flops_total = 2.0 * float(n) ** 3
        time_s = flops_total / agg_flops * util.wall_time_scale
        if rng is not None:
            time_s *= max(0.5, 1.0 + cal.time_jitter * rng.standard_normal())

        achieved_flops = flops_total / time_s
        _, traffic_part, walk_part = _PARTITION_FACTORS[config.partition]
        traffic_rate = achieved_flops * cal.traffic_bytes_per_flop * traffic_part
        power = cpu_power(
            spec,
            cal,
            placement,
            flops_per_s=achieved_flops,
            traffic_bytes_per_s=traffic_rate,
            n_groups=config.groups,
            walk_factor=walk_part * LIBRARIES[config.library].walk_factor,
        )
        if freq_scale != 1.0:
            # V²f scaling of the core-clocked components.  e_flop is
            # defined at base clock; at scaled clock the same flop rate
            # costs f^1.5 per op, and the per-core wake power follows
            # f^2.5.  Memory-side (DRAM, dTLB walk, uncore) power is
            # clock-domain independent.
            from repro.simcpu.power import CPUPowerBreakdown

            volt = freq_scale**1.5
            power = CPUPowerBreakdown(
                cores_w=power.cores_w * freq_scale**2.5,
                flops_w=power.flops_w * volt,
                uncore_w=power.uncore_w,
                dram_w=power.dram_w,
                dtlb_w=power.dtlb_w,
            )
        energy = power.dynamic_w * time_s
        return CPURunResult(
            time_s=time_s,
            dynamic_energy_j=energy,
            gflops=achieved_flops / 1e9,
            avg_utilization=util.average * 100.0,
            utilization=util,
            power=power,
            placement=placement,
            config=config,
            n=n,
        )
