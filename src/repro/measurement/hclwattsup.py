"""HCLWattsUp-style energy API over the simulated power meter.

The paper uses the HCLWATTSUP tool [34] "to determine the dynamic and
total energy consumptions" from WattsUp Pro samples, taking "several
precautions ... to eliminate the potential disturbance due to
components such as SSDs and fans".  The essential algorithm:

1. establish the node's idle (static) power baseline by sampling the
   meter while nothing runs;
2. sample the meter during the application run;
3. total energy  = ∫ P(t) dt over the run window;
   static energy = P_idle × run duration;
   dynamic energy = total − static.

:class:`HCLWattsUp` reproduces that pipeline.  Because the baseline is
itself a noisy estimate, dynamic energies inherit realistic measurement
error — which is exactly what the Student-t repetition protocol in
:mod:`repro.measurement.stats` exists to average away.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.measurement.powermeter import PowerMeter, PowerPhase, PowerTrace

__all__ = ["EnergyReading", "HCLWattsUp"]


@dataclass(frozen=True)
class EnergyReading:
    """Energies extracted from one measured application run.

    Attributes
    ----------
    total_energy_j:
        Integral of sampled node power over the run window.
    static_energy_j:
        Idle baseline power × run duration.
    dynamic_energy_j:
        ``total − static`` (clamped at zero: sampling noise can push
        tiny dynamic energies slightly negative, which the real tool
        also clamps).
    duration_s:
        Run duration used for the static term.
    baseline_power_w:
        The idle-power estimate used.
    """

    total_energy_j: float
    static_energy_j: float
    dynamic_energy_j: float
    duration_s: float
    baseline_power_w: float


class HCLWattsUp:
    """Dynamic/total energy measurement over a :class:`PowerMeter`.

    Parameters
    ----------
    meter:
        The simulated WattsUp Pro.
    idle_power_w:
        True idle power of the node (the simulator knows it; the tool
        has to *estimate* it by sampling).
    baseline_seconds:
        How long to sample idle power when calibrating the baseline.
        HCLWattsUp samples for tens of seconds before each experiment
        series; longer baselines give tighter dynamic energies.
    """

    def __init__(
        self,
        meter: PowerMeter,
        idle_power_w: float,
        *,
        baseline_seconds: float = 30.0,
    ) -> None:
        if idle_power_w < 0:
            raise ValueError("idle power must be non-negative")
        if baseline_seconds < 2.0:
            raise ValueError("baseline window must be at least 2 seconds")
        self._meter = meter
        self._true_idle_w = idle_power_w
        self._baseline_seconds = baseline_seconds
        self._baseline_w: float | None = None

    @property
    def baseline_power_w(self) -> float:
        """Estimated idle power; calibrated lazily on first use."""
        if self._baseline_w is None:
            self._baseline_w = self._calibrate_baseline()
        return self._baseline_w

    def _calibrate_baseline(self) -> float:
        trace = PowerTrace(
            phases=(PowerPhase(self._baseline_seconds, self._true_idle_w),)
        )
        samples = self._meter.sample_run(trace)
        return float(np.mean([s.power_w for s in samples]))

    def recalibrate(self) -> float:
        """Force a fresh baseline estimate and return it."""
        self._baseline_w = self._calibrate_baseline()
        return self._baseline_w

    def measure(self, trace: PowerTrace) -> EnergyReading:
        """Measure one application run described by ``trace``.

        The trace should cover exactly the run window (HCLWattsUp
        brackets the application with sync markers); its total duration
        is taken as the run duration for the static-energy term.
        """
        samples = self._meter.sample_run(trace)
        interval = self._meter.sample_interval_s
        duration = trace.total_duration_s
        # Rectangle rule, truncated to the run window: the padding the
        # meter adds for very short runs must not inflate the energy.
        total = 0.0
        for s in samples:
            window_start = s.t_s - interval / 2.0
            window_end = s.t_s + interval / 2.0
            covered = max(0.0, min(window_end, duration) - window_start)
            if covered <= 0:
                break
            total += s.power_w * covered
        static = self.baseline_power_w * duration
        dynamic = max(0.0, total - static)
        return EnergyReading(
            total_energy_j=total,
            static_energy_j=static,
            dynamic_energy_j=dynamic,
            duration_s=duration,
            baseline_power_w=self.baseline_power_w,
        )
