"""2D-FFT application model for the strong-EP study (Fig. 1, from [12]).

The application computes a 2D DFT of an ``N×N`` complex signal matrix
(MKL FFT on the CPU, CUFFT on the GPUs).  The amount of work is
defined, as in the paper, as ``W = 5·N²·log2(N)``.

Fig. 1's finding: dynamic energy is a *complex non-linear* function of
W on all three platforms.  The model carries the two mechanisms that
make a real FFT's energy-per-op vary with N:

* **Radix mix** — mixed-radix FFTs handle N whose factors are in
  {2,3,5,7} efficiently; a large prime factor forces a Bluestein-style
  fallback with a multiple of the flops and much worse locality.  This
  produces the jagged structure as N sweeps 125..44000.
* **Cache-hierarchy crossings** — the transpose between the row and
  column passes streams the full 16·N² working set; energy per op
  steps up as the set crosses L2 → L3/L2(gpu) → DRAM reach.

Each device has a throughput/power profile derived from its spec;
``run`` returns (time, dynamic energy) for the strong-EP analysis in
``repro.experiments.fig1_strong_ep``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machines.specs import CPUSpec, GPUSpec, HASWELL, K40C, P100

__all__ = [
    "fft_work",
    "largest_prime_factor",
    "radix_penalty",
    "FFTDeviceProfile",
    "FFT2DApp",
    "FFTRunResult",
]

#: Radices a mixed-radix FFT implements natively.
_NATIVE_RADICES = (2, 3, 5, 7)


def fft_work(n: int) -> float:
    """The paper's work metric: ``W = 5·N²·log2(N)``."""
    if n < 2:
        raise ValueError("N must be at least 2")
    return 5.0 * float(n) * n * math.log2(n)


def largest_prime_factor(n: int) -> int:
    """Largest prime factor of n (n ≥ 2)."""
    if n < 2:
        raise ValueError("n must be at least 2")
    largest = 1
    d = 2
    while d * d <= n:
        while n % d == 0:
            largest = d
            n //= d
        d += 1
    if n > 1:
        largest = n
    return largest


def radix_penalty(n: int, *, bluestein_factor: float = 2.2) -> float:
    """Relative cost multiplier of the radix mix of N.

    1.0 for pure powers of native radices; a mild penalty for mixed
    native radices; a steep one once a non-native prime factor forces
    the generic (Bluestein/Rader) path.  ``bluestein_factor`` is the
    library-specific base cost of that generic path (MKL's Rader/
    Bluestein hybrid is leaner than CUFFT's, whose Kepler-era path is
    the slowest).
    """
    if n < 2:
        raise ValueError("N must be at least 2")
    if bluestein_factor < 1.0:
        raise ValueError("bluestein_factor must be at least 1")
    m = n
    non_native = 1
    mix = 0
    for r in _NATIVE_RADICES:
        while m % r == 0:
            m //= r
            if r != 2:
                mix += 1
    if m > 1:
        non_native = m  # residual contains only non-native primes
    penalty = 1.0 + 0.04 * min(mix, 8)
    if non_native > 1:
        # Generic-path blowup grows (slowly) with the residual factor.
        penalty *= bluestein_factor + 0.25 * math.log2(non_native)
    return penalty


@dataclass(frozen=True)
class FFTDeviceProfile:
    """FFT throughput/power profile of one platform.

    Attributes
    ----------
    name:
        Short platform name (matches ``repro.machines`` keys).
    base_gflops:
        Sustained FFT throughput on a cache-resident, power-of-two
        transform.
    dynamic_power_w:
        Average dynamic power during the transform at that throughput.
    cache_bytes:
        On-chip capacity whose crossing bumps energy/op (L3 for the
        CPU, L2 for the GPUs).
    dram_energy_scale:
        Multiplier on energy/op once the working set is DRAM-resident.
    dram_throughput_scale:
        Multiplier on throughput once DRAM-resident.
    bluestein_factor:
        Library-specific base cost of the generic large-prime path.
    """

    name: str
    base_gflops: float
    dynamic_power_w: float
    cache_bytes: float
    dram_energy_scale: float
    dram_throughput_scale: float
    bluestein_factor: float = 2.2


def _default_profiles() -> dict[str, FFTDeviceProfile]:
    return {
        "haswell": FFTDeviceProfile(
            name="haswell",
            # MKL 2D FFT sustains ~5% of DP peak across 24 cores.
            base_gflops=HASWELL.peak_dp_flops / 1e9 * 0.05 * 8,
            dynamic_power_w=95.0,
            cache_bytes=HASWELL.sockets * HASWELL.l3.capacity_bytes,
            dram_energy_scale=1.9,
            dram_throughput_scale=0.55,
            bluestein_factor=2.2,
        ),
        "k40c": FFTDeviceProfile(
            name="k40c",
            base_gflops=K40C.peak_dp_flops / 1e9 * 0.18,
            dynamic_power_w=150.0,
            cache_bytes=K40C.l2_bytes,
            dram_energy_scale=1.6,
            dram_throughput_scale=0.6,
            bluestein_factor=3.1,
        ),
        "p100": FFTDeviceProfile(
            name="p100",
            base_gflops=P100.peak_dp_flops / 1e9 * 0.18,
            dynamic_power_w=170.0,
            cache_bytes=P100.l2_bytes,
            dram_energy_scale=1.5,
            dram_throughput_scale=0.65,
            bluestein_factor=2.6,
        ),
    }


@dataclass(frozen=True)
class FFTRunResult:
    """Modelled (time, energy) of one 2D FFT."""

    n: int
    work: float
    time_s: float
    dynamic_energy_j: float
    device: str


class FFT2DApp:
    """The 2D-FFT application across the paper's three platforms."""

    def __init__(self, profiles: dict[str, FFTDeviceProfile] | None = None) -> None:
        self.profiles = profiles if profiles is not None else _default_profiles()

    def devices(self) -> list[str]:
        return sorted(self.profiles)

    def _mem_factors(self, profile: FFTDeviceProfile, n: int) -> tuple[float, float]:
        """(energy multiplier, throughput multiplier) for the working set.

        Smooth-steps between cache-resident and DRAM-resident as the
        16·N² complex matrix outgrows the on-chip capacity.
        """
        working_set = 16.0 * n * n
        x = working_set / profile.cache_bytes
        # Logistic blend centred where the set is ~4x the cache.
        blend = 1.0 / (1.0 + (4.0 / x) ** 2) if x > 0 else 0.0
        e_mult = 1.0 + (profile.dram_energy_scale - 1.0) * blend
        t_mult = 1.0 + (1.0 / profile.dram_throughput_scale - 1.0) * blend
        return e_mult, t_mult

    def run(self, device: str, n: int) -> FFTRunResult:
        """Model one 2D FFT of size N on a device.

        Raises
        ------
        KeyError
            For unknown device names.
        ValueError
            For N < 2 or a transform that does not fit device memory
            (GPUs hold 12 GB; CUFFT needs ~3 working copies).
        """
        profile = self.profiles[device]
        w = fft_work(n)
        if device in ("k40c", "p100"):
            spec = K40C if device == "k40c" else P100
            if 3 * 16.0 * n * n > spec.mem_capacity_bytes:
                raise ValueError(
                    f"N={n} does not fit {spec.name} memory for CUFFT"
                )
        rp = radix_penalty(n, bluestein_factor=profile.bluestein_factor)
        e_mult, t_mult = self._mem_factors(profile, n)
        time_s = w / (profile.base_gflops * 1e9) * rp * t_mult
        # Power sags slightly on the generic path (latency bound), so
        # energy grows less than time does — still strongly non-linear.
        power = profile.dynamic_power_w * (1.0 / rp) ** 0.25
        energy = power * time_s * e_mult
        return FFTRunResult(
            n=n, work=w, time_s=time_s, dynamic_energy_j=energy, device=device
        )

    def sweep(self, device: str, sizes: list[int]) -> list[FFTRunResult]:
        """Run a size sweep on one device (skipping out-of-memory sizes)."""
        out = []
        for n in sizes:
            try:
                out.append(self.run(device, n))
            except ValueError:
                continue
        if not out:
            raise ValueError("no size in the sweep fits the device")
        return out
