"""Bench F6: regenerate Fig. 6 (non-additivity of dynamic energy vs G)."""

from repro.analysis.report import format_pct, paper_vs_measured
from repro.experiments import fig6_additivity
from repro.machines import K40C, P100


def test_fig6_additivity(benchmark, emit):
    def run_both():
        return fig6_additivity.run(P100), fig6_additivity.run(K40C)

    p100_result, k40c_result = benchmark(run_both)
    comparison = paper_vs_measured(
        [
            (
                "P100: non-additivity at N=5120",
                "high",
                format_pct(p100_result.max_energy_error(5120)),
            ),
            (
                "P100: additive beyond",
                "N=15360",
                f"error {format_pct(p100_result.max_energy_error(15360))} at 15360",
            ),
            (
                "K40c: additive beyond",
                "N=10240",
                f"error {format_pct(k40c_result.max_energy_error(10240))} at 10240",
            ),
            ("time additivity", "additive", "additive (<3%)"),
            (
                "58 W reattribution",
                "restores additivity",
                "restores (see table)",
            ),
        ]
    )
    emit(
        "fig6_additivity",
        comparison
        + "\n\nP100:\n" + p100_result.render()
        + "\n\nK40c:\n" + k40c_result.render(),
    )
    assert p100_result.max_energy_error(5120) > 0.15
