"""Span-profile analytics over ``repro-telemetry/1`` streams.

``repro trace`` renders one run as a tree for eyeballing; this module
turns the same events into *profiles*:

* :func:`span_profile` — per-span-name aggregates: call count, total
  (wall) time and **self** time (wall minus direct children — where
  time was actually spent, not merely passed through).  For a
  well-formed tree self-time is non-negative and the self-times sum
  exactly to the root wall time (``tests/test_perf.py`` pins both).
* :func:`critical_path` — the chain from the longest root span down
  through each node's longest child: the sequence of spans that
  bounds the run's wall time.
* :func:`folded_stacks` — the profile as Brendan-Gregg folded stacks
  (``root;child;leaf self_ns`` per line), the input format of
  ``flamegraph.pl`` and every speedscope-style viewer.

Orphan spans (a ``parent`` id that never appears — a worker stream
merged without its parent, or a truncated stream) are adopted as
roots rather than dropped: their time is real and must stay visible.
Zero-duration spans are kept (count and structure still matter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

__all__ = [
    "SpanProfile",
    "build_tree",
    "span_profile",
    "critical_path",
    "folded_stacks",
    "render_folded",
    "parse_folded",
    "render_report",
    "render_diff",
]


@dataclass(frozen=True)
class SpanProfile:
    """Aggregate of every span sharing one name."""

    name: str
    count: int
    total_ns: int
    self_ns: int

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0


def _spans(events: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    return sorted(
        (e for e in events if e.get("event") == "span"),
        key=lambda e: e["id"],
    )


def build_tree(
    events: Iterable[dict[str, Any]],
) -> tuple[list[dict[str, Any]], dict[int | None, list[dict[str, Any]]]]:
    """``(roots, children-by-parent-id)`` of a span event stream.

    Orphans — spans whose parent id never appears in the stream — are
    promoted to roots so their time is never silently dropped.
    """
    spans = _spans(events)
    ids = {s["id"] for s in spans}
    children: dict[int | None, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for s in spans:
        parent = s.get("parent")
        if parent is None or parent not in ids:
            roots.append(s)
        else:
            children.setdefault(parent, []).append(s)
    return roots, children


def _self_ns(
    span: dict[str, Any],
    children: dict[int | None, list[dict[str, Any]]],
) -> int:
    child_ns = sum(c["duration_ns"] for c in children.get(span["id"], []))
    return max(0, span["duration_ns"] - child_ns)


def span_profile(events: Iterable[dict[str, Any]]) -> list[SpanProfile]:
    """Per-span-name aggregates, sorted by self time (descending).

    Ties break on name, so equal-work runs produce identical output —
    the deterministic-ordering contract the tests enforce.
    """
    roots, children = build_tree(events)
    agg: dict[str, list[int]] = {}
    for s in roots + [c for cs in children.values() for c in cs]:
        row = agg.setdefault(s["name"], [0, 0, 0])
        row[0] += 1
        row[1] += s["duration_ns"]
        row[2] += _self_ns(s, children)
    return sorted(
        (
            SpanProfile(name, count, total, self_ns)
            for name, (count, total, self_ns) in agg.items()
        ),
        key=lambda p: (-p.self_ns, p.name),
    )


def critical_path(
    events: Iterable[dict[str, Any]],
) -> list[dict[str, Any]]:
    """Longest root, then each node's longest child, to a leaf.

    Returns one row per hop: ``{"name", "id", "wall_ns", "self_ns"}``.
    Ties break on span id (entry order) for determinism.
    """
    roots, children = build_tree(events)
    if not roots:
        return []
    path = []
    node = max(roots, key=lambda s: (s["duration_ns"], -s["id"]))
    while node is not None:
        path.append(
            {
                "name": node["name"],
                "id": node["id"],
                "wall_ns": node["duration_ns"],
                "self_ns": _self_ns(node, children),
            }
        )
        kids = children.get(node["id"])
        node = (
            max(kids, key=lambda s: (s["duration_ns"], -s["id"]))
            if kids
            else None
        )
    return path


def _frame(name: str) -> str:
    """One stack frame, with the folded-format separators escaped."""
    return name.replace(";", ":").replace(" ", "_")


def folded_stacks(events: Iterable[dict[str, Any]]) -> dict[str, int]:
    """The profile as ``stack -> self_ns`` folded stacks.

    Stacks are root-first, ``;``-joined span names; values are summed
    self-times in nanoseconds.  Zero-self frames are omitted (pure
    pass-through spans add no samples), which keeps the invariant
    ``sum(values) == sum(root walls)`` exact for well-formed trees.
    """
    roots, children = build_tree(events)
    out: dict[str, int] = {}

    def walk(span: dict[str, Any], prefix: str) -> None:
        stack = f"{prefix};{_frame(span['name'])}" if prefix else _frame(
            span["name"]
        )
        self_ns = _self_ns(span, children)
        if self_ns > 0:
            out[stack] = out.get(stack, 0) + self_ns
        for child in children.get(span["id"], []):
            walk(child, stack)

    for root in roots:
        walk(root, "")
    return out


def render_folded(events: Iterable[dict[str, Any]]) -> str:
    """Folded stacks as text, one ``stack value`` line, sorted."""
    stacks = folded_stacks(events)
    return "\n".join(
        f"{stack} {value}" for stack, value in sorted(stacks.items())
    )


def parse_folded(text: str) -> dict[str, int]:
    """Inverse of :func:`render_folded` (the round-trip the tests pin)."""
    out: dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        stack, _, value = line.rpartition(" ")
        if not stack or not value.isdigit():
            raise ValueError(f"line {lineno}: not a folded stack: {line!r}")
        out[stack] = out.get(stack, 0) + int(value)
    return out


def _fmt_ms(ns: float) -> str:
    return f"{ns / 1e6:10.3f}"


def render_report(events: Sequence[dict[str, Any]]) -> str:
    """``repro perf report``: profile table + critical path."""
    profiles = span_profile(events)
    roots, _ = build_tree(events)
    total_ns = sum(s["duration_ns"] for s in roots)
    provenance = next(
        (e for e in events if e.get("event") == "provenance"), None
    )

    lines: list[str] = []
    if provenance is not None:
        bits = [
            f"{k}={provenance[k]}"
            for k in ("command", "git_sha", "backend")
            if k in provenance
        ]
        if bits:
            lines.append("run: " + " ".join(str(b) for b in bits))
    lines.append(
        f"span profile ({sum(p.count for p in profiles)} spans, "
        f"{len(profiles)} names, {total_ns / 1e6:.2f} ms root wall):"
    )
    lines.append(
        f"  {'self ms':>10} {'self %':>7} {'total ms':>10} "
        f"{'calls':>6}  span"
    )
    for p in profiles:
        pct = 100.0 * p.self_ns / total_ns if total_ns else 0.0
        lines.append(
            f"  {_fmt_ms(p.self_ns)} {pct:6.1f}% {_fmt_ms(p.total_ns)} "
            f"{p.count:6d}  {p.name}"
        )
    self_sum = sum(p.self_ns for p in profiles)
    lines.append(
        f"  {_fmt_ms(self_sum)} {100.0 if total_ns else 0.0:6.1f}% "
        f"{'':>10} {'':>6}  (sum of self)"
    )

    path = critical_path(events)
    if path:
        lines.append("")
        lines.append("critical path (longest child at every level):")
        for depth, hop in enumerate(path):
            lines.append(
                f"  {_fmt_ms(hop['wall_ns'])} {_fmt_ms(hop['self_ns'])}  "
                f"{'  ' * depth}{hop['name']}"
            )
    return "\n".join(lines)


def render_diff(
    events_a: Sequence[dict[str, Any]],
    events_b: Sequence[dict[str, Any]],
    *,
    label_a: str = "A",
    label_b: str = "B",
) -> str:
    """``repro perf diff``: per-span-name deltas, biggest self shift first."""
    a = {p.name: p for p in span_profile(events_a)}
    b = {p.name: p for p in span_profile(events_b)}
    names = sorted(
        set(a) | set(b),
        key=lambda n: (
            -abs(
                (b[n].self_ns if n in b else 0)
                - (a[n].self_ns if n in a else 0)
            ),
            n,
        ),
    )
    lines = [
        f"span-profile diff: {label_a} -> {label_b}",
        f"  {'self A ms':>10} {'self B ms':>10} {'delta ms':>10} "
        f"{'delta %':>8}  span",
    ]
    for name in names:
        self_a = a[name].self_ns if name in a else 0
        self_b = b[name].self_ns if name in b else 0
        delta = self_b - self_a
        pct = f"{100.0 * delta / self_a:+7.1f}%" if self_a else "     new"
        marker = ""
        if name not in a:
            marker = "  (only in B)"
        elif name not in b:
            marker = "  (only in A)"
        lines.append(
            f"  {_fmt_ms(self_a)} {_fmt_ms(self_b)} "
            f"{delta / 1e6:+10.3f} {pct:>8}  {name}{marker}"
        )
    total_a = sum(p.self_ns for p in a.values())
    total_b = sum(p.self_ns for p in b.values())
    lines.append(
        f"  total self: {total_a / 1e6:.3f} ms -> {total_b / 1e6:.3f} ms "
        f"({(total_b - total_a) / 1e6:+.3f} ms)"
    )
    return "\n".join(lines)
