"""Bench F2: regenerate Fig. 2 (P100 EP plots, N = 18432)."""

from repro.analysis.report import format_pct, paper_vs_measured
from repro.experiments import fig2_p100_n18432


def test_fig2_p100_n18432(benchmark, emit):
    result = benchmark(fig2_p100_n18432.run)
    comparison = paper_vs_measured(
        [
            ("global front size", 2, len(result.global_front)),
            (
                "max saving @ degradation",
                "12.5% @ 2.5%",
                f"{format_pct(result.global_headline.energy_saving)} @ "
                f"{format_pct(result.global_headline.perf_degradation)}",
            ),
            (
                "BS<=30 saving @ degradation",
                "24% @ 8%",
                f"{format_pct(result.bs30_headline.energy_saving)} @ "
                f"{format_pct(result.bs30_headline.perf_degradation)}",
            ),
            (
                "BS 1-20 region",
                "energy monotone in time",
                f"rank corr {result.low_bs_rank_correlation:.2f}",
            ),
        ]
    )
    emit("fig2_p100_n18432", comparison + "\n\n" + result.render())
    assert 2 <= len(result.global_front) <= 3
