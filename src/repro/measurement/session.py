"""Resumable measurement sessions.

A full weak-EP study measures every configuration through the
repetition protocol — hours of wall time on a real testbed.  The
HCLWattsUp workflow therefore checkpoints after every data point; this
module provides the same capability: a :class:`MeasurementSession`
appends each converged data point to a JSONL store keyed by the
configuration, and skips configurations already measured when the
session is reopened.

The store is line-oriented JSON so a crashed run loses at most the
in-flight point, and the file remains greppable/diffable.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Hashable, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.pareto import ParetoPoint
from repro.measurement.runner import DataPoint, ExperimentRunner

__all__ = ["SessionRecord", "MeasurementSession"]


@dataclass(frozen=True)
class SessionRecord:
    """One persisted data point."""

    config: dict[str, Any]
    time_s: float
    energy_j: float
    n_runs: int
    converged: bool

    def to_point(self) -> ParetoPoint:
        return ParetoPoint(self.time_s, self.energy_j, config=self.config)


def _key(config: Mapping[str, Any]) -> str:
    """Canonical key for a configuration dict."""
    return json.dumps(dict(config), sort_keys=True)


class MeasurementSession:
    """Append-only store of converged measurements.

    Parameters
    ----------
    path:
        JSONL file; created on first write, loaded on construction.
    runner:
        Protocol runner for new measurements (the paper's defaults).
    """

    def __init__(
        self, path: str | Path, runner: ExperimentRunner | None = None
    ) -> None:
        self.path = Path(path)
        self.runner = runner if runner is not None else ExperimentRunner()
        self._records: dict[str, SessionRecord] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        for lineno, line in enumerate(
            self.path.read_text().splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
                record = SessionRecord(
                    config=raw["config"],
                    time_s=float(raw["time_s"]),
                    energy_j=float(raw["energy_j"]),
                    n_runs=int(raw["n_runs"]),
                    converged=bool(raw["converged"]),
                )
            except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
                raise ValueError(
                    f"{self.path}:{lineno}: corrupt session record: {exc}"
                ) from exc
            self._records[_key(record.config)] = record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, config: Mapping[str, Any]) -> bool:
        return _key(config) in self._records

    def get(self, config: Mapping[str, Any]) -> SessionRecord | None:
        return self._records.get(_key(config))

    def records(self) -> list[SessionRecord]:
        return list(self._records.values())

    def points(self) -> list[ParetoPoint]:
        """All stored measurements as analysis-ready points."""
        return [r.to_point() for r in self._records.values()]

    def _append(self, record: SessionRecord) -> None:
        with self.path.open("a") as fh:
            fh.write(
                json.dumps(
                    {
                        "config": record.config,
                        "time_s": record.time_s,
                        "energy_j": record.energy_j,
                        "n_runs": record.n_runs,
                        "converged": record.converged,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        self._records[_key(record.config)] = record

    def measure(
        self,
        config: Mapping[str, Any],
        trial_factory: Callable[[Mapping[str, Any]], Callable[[], tuple[float, float]]],
    ) -> SessionRecord:
        """Measure one configuration, reusing a stored result if present.

        ``trial_factory(config)`` must return the zero-argument trial
        callable the protocol repeats.  Only *converged* points are
        persisted — a non-converged protocol outcome raises so the
        caller can widen ``max_runs`` rather than silently storing a
        low-quality point.
        """
        existing = self.get(config)
        if existing is not None:
            return existing
        dp: DataPoint = self.runner.measure(trial_factory(config))
        if not dp.converged:
            raise RuntimeError(
                f"protocol did not converge for {dict(config)!r} within "
                f"{self.runner.max_runs} runs"
            )
        record = SessionRecord(
            config=dict(config),
            time_s=dp.time_s,
            energy_j=dp.energy_j,
            n_runs=dp.n_runs,
            converged=True,
        )
        self._append(record)
        return record

    def sweep(
        self,
        configs: list[Mapping[str, Any]],
        trial_factory: Callable[[Mapping[str, Any]], Callable[[], tuple[float, float]]],
    ) -> list[SessionRecord]:
        """Measure every configuration, skipping stored ones."""
        return [self.measure(cfg, trial_factory) for cfg in configs]
