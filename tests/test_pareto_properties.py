"""Property-based invariant tests for :mod:`repro.core.pareto`.

Hand-rolled randomized property testing (the environment has no
``hypothesis``): each property is checked over many seeded random
point clouds, including degenerate shapes — duplicated objective
vectors, collinear points, integer grids that force ties — that a
handful of fixed fixtures would miss.  Every cloud is deterministic in
its seed, so failures reproduce.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.pareto import (
    ParetoPoint,
    dominates,
    epsilon_pareto_front,
    hypervolume_2d,
    local_pareto_front,
    nondominated_sort,
    pareto_front,
)

SEEDS = range(25)


def random_cloud(seed: int) -> list[ParetoPoint]:
    """A random point cloud whose shape varies with the seed.

    Three regimes: continuous uniform (generic position), a coarse
    integer grid (many exact ties and duplicated objective vectors),
    and a mixture with duplicated points appended verbatim.
    """
    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, 120))
    regime = seed % 3
    if regime == 0:
        times = rng.uniform(0.1, 10.0, size)
        energies = rng.uniform(1.0, 1000.0, size)
    elif regime == 1:
        times = rng.integers(1, 8, size).astype(float)
        energies = rng.integers(1, 8, size).astype(float)
    else:
        times = np.concatenate([rng.uniform(0.1, 10.0, size), [1.0] * 5])
        energies = np.concatenate([rng.uniform(1.0, 1000.0, size), [5.0] * 5])
    return [
        ParetoPoint(float(t), float(e), config={"i": i})
        for i, (t, e) in enumerate(zip(times, energies))
    ]


def brute_force_front_vectors(
    points: list[ParetoPoint],
) -> set[tuple[float, float]]:
    """O(n²) reference: the set of non-dominated objective vectors."""
    return {
        p.objectives()
        for p in points
        if not any(dominates(q, p) for q in points)
    }


@pytest.mark.parametrize("seed", SEEDS)
class TestParetoFrontProperties:
    def test_front_members_mutually_nondominating(self, seed):
        front = pareto_front(random_cloud(seed))
        for a in front:
            for b in front:
                assert not dominates(a, b)

    def test_front_is_subset_of_input(self, seed):
        cloud = random_cloud(seed)
        ids = {id(p) for p in cloud}
        for p in pareto_front(cloud):
            assert id(p) in ids

    def test_dominated_points_never_in_front(self, seed):
        cloud = random_cloud(seed)
        front = pareto_front(cloud)
        for member in front:
            assert not any(dominates(q, member) for q in cloud)

    def test_front_matches_brute_force(self, seed):
        cloud = random_cloud(seed)
        got = {p.objectives() for p in pareto_front(cloud)}
        assert got == brute_force_front_vectors(cloud)

    def test_front_independent_of_input_order(self, seed):
        cloud = random_cloud(seed)
        baseline = [p.objectives() for p in pareto_front(cloud)]
        shuffled = cloud[:]
        random.Random(seed).shuffle(shuffled)
        assert [p.objectives() for p in pareto_front(shuffled)] == baseline
        assert [
            p.objectives() for p in pareto_front(cloud[::-1])
        ] == baseline

    def test_front_sorted_and_strictly_improving(self, seed):
        front = pareto_front(random_cloud(seed))
        times = [p.time_s for p in front]
        energies = [p.energy_j for p in front]
        assert times == sorted(times)
        # Strictly decreasing energy left to right (duplicates collapse).
        assert all(a > b for a, b in zip(energies, energies[1:]))

    def test_front_idempotent(self, seed):
        front = pareto_front(random_cloud(seed))
        assert pareto_front(front) == front


@pytest.mark.parametrize("seed", SEEDS)
class TestDerivedFrontProperties:
    def test_local_front_is_front_of_region(self, seed):
        cloud = random_cloud(seed)
        region = lambda p: p.time_s <= 5.0  # noqa: E731
        local = local_pareto_front(cloud, region)
        inside = [p for p in cloud if region(p)]
        assert local == pareto_front(inside)
        assert all(region(p) for p in local)

    def test_nondominated_sort_partitions_cloud(self, seed):
        cloud = random_cloud(seed)
        layers = nondominated_sort(cloud)
        assert sum(len(layer) for layer in layers) == len(cloud)
        if layers:
            assert [
                p.objectives() for p in layers[0]
            ] == [p.objectives() for p in pareto_front(cloud)]

    def test_nondominated_sort_rank_monotone(self, seed):
        cloud = random_cloud(seed)
        layers = nondominated_sort(cloud)
        # No point in layer k dominates any point in an earlier layer.
        for k, layer in enumerate(layers):
            for earlier in layers[:k]:
                for p in layer:
                    assert not any(dominates(p, q) for q in earlier)

    def test_nondominated_sort_matches_peeling_oracle(self, seed):
        """The single-sort staircase equals repeated front peeling —
        layer by layer, identical member identity and order."""
        cloud = random_cloud(seed)
        remaining = cloud[:]
        expected = []
        while remaining:
            front = pareto_front(remaining)
            expected.append(front)
            ids = {id(p) for p in front}
            remaining = [p for p in remaining if id(p) not in ids]
        got = nondominated_sort(cloud)
        assert [[id(p) for p in layer] for layer in got] == [
            [id(p) for p in layer] for layer in expected
        ]


def epsilon_front_oracle(
    points: list[ParetoPoint], epsilon: float
) -> list[ParetoPoint]:
    """Quadratic greedy reference for the ε-approximate front."""
    front = pareto_front(points)
    kept: list[ParetoPoint] = []
    scale = 1.0 + epsilon
    for p in front:
        covered = any(
            s.time_s <= scale * p.time_s and s.energy_j <= scale * p.energy_j
            for s in kept
        )
        if not covered:
            kept.append(p)
    return kept


@pytest.mark.parametrize("seed", SEEDS)
class TestEpsilonFrontAgainstFront:
    """ε-front properties relative to the O(n log n) exact front."""

    EPSILONS = (0.0, 0.05, 0.3, 1.5)

    def test_matches_quadratic_oracle(self, seed):
        cloud = random_cloud(seed)
        for eps in self.EPSILONS:
            got = epsilon_pareto_front(cloud, eps)
            assert [id(p) for p in got] == [
                id(p) for p in epsilon_front_oracle(cloud, eps)
            ]

    def test_zero_epsilon_is_exact_front(self, seed):
        cloud = random_cloud(seed)
        assert epsilon_pareto_front(cloud, 0.0) == pareto_front(cloud)

    def test_subset_of_front_and_covering(self, seed):
        cloud = random_cloud(seed)
        front = pareto_front(cloud)
        ids = {id(p) for p in front}
        for eps in self.EPSILONS:
            kept = epsilon_pareto_front(cloud, eps)
            assert all(id(p) in ids for p in kept)
            scale = 1.0 + eps
            for p in front:  # every front point is (1+ε)-dominated
                assert any(
                    s.time_s <= scale * p.time_s
                    and s.energy_j <= scale * p.energy_j
                    for s in kept
                )

    def test_monotone_in_epsilon(self, seed):
        cloud = random_cloud(seed)
        sizes = [
            len(epsilon_pareto_front(cloud, eps)) for eps in self.EPSILONS
        ]
        assert sizes == sorted(sizes, reverse=True)


@pytest.mark.parametrize("seed", SEEDS)
class TestHypervolumeAgainstFront:
    """Hypervolume consistency with the O(n log n) front extraction."""

    def reference(self, cloud):
        return (
            max(p.time_s for p in cloud) * 1.1 + 1.0,
            max(p.energy_j for p in cloud) * 1.1 + 1.0,
        )

    def test_front_carries_all_hypervolume(self, seed):
        """Dominated points contribute nothing: the front's hypervolume
        equals the whole cloud's."""
        cloud = random_cloud(seed)
        ref = self.reference(cloud)
        assert hypervolume_2d(pareto_front(cloud), ref) == pytest.approx(
            hypervolume_2d(cloud, ref)
        )

    def test_epsilon_front_never_gains_hypervolume(self, seed):
        cloud = random_cloud(seed)
        ref = self.reference(cloud)
        full = hypervolume_2d(pareto_front(cloud), ref)
        for eps in (0.0, 0.05, 0.3, 1.5):
            kept = epsilon_pareto_front(cloud, eps)
            hv = hypervolume_2d(kept, ref)
            # A subset of the front can only lose dominated area (and
            # at ε=0 it loses none).
            assert hv <= full + 1e-12
            if eps == 0.0:
                assert hv == pytest.approx(full)

    def test_rank0_layer_hypervolume_equals_front(self, seed):
        cloud = random_cloud(seed)
        ref = self.reference(cloud)
        layers = nondominated_sort(cloud)
        assert hypervolume_2d(layers[0], ref) == pytest.approx(
            hypervolume_2d(pareto_front(cloud), ref)
        )
