"""Name-keyed device registry over ``repro-device/1`` files.

The registry is the single source of device truth for every layer that
resolves a device *name*: ``repro.machines.get_machine`` falls through
to it, ``repro.simgpu.calibration.calibration_for`` resolves non-core
specs through it, the CLI derives its ``--device`` choices from it,
and the store names it in unknown-device diagnostics.  A V100- or
A100-class part becomes sweepable by dropping one JSON/TOML file into
``$REPRO_DEVICE_DIR`` — no new Python module.

Resolution sources, in order:

1. the bundled definitions under ``repro/devices/data/`` (K40c, P100,
   Haswell — validated bit-identical to the legacy in-code constants
   by :func:`validate_bundled` and the CI ``repro devices validate
   --all`` gate);
2. every ``*.json`` / ``*.toml`` file in ``$REPRO_DEVICE_DIR``
   (``os.pathsep``-separated list of directories).

A duplicate key or spec name across sources is a hard
:class:`~repro.devices.schema.DeviceSchemaError` naming both files —
silent shadowing could pair a spec with the wrong calibration, which
the content-addressed store would faithfully persist.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.devices.schema import (
    DeviceDefinition,
    DeviceSchemaError,
    UnknownDeviceError,
    parse_device_document,
    read_device_document,
)
from repro.machines.specs import CPUSpec, GPUSpec
from repro.simgpu.calibration import GPUCalibration

__all__ = [
    "DeviceRegistry",
    "bundled_dir",
    "bundled_registry",
    "default_registry",
    "refresh_default_registry",
    "get_device",
    "device_spec",
    "device_calibration",
    "gpu_device_choices",
    "validate_bundled",
]


class DeviceRegistry:
    """Immutable-after-build lookup of device definitions.

    Entries are addressable by registry key (``"k40c"``) and by full
    spec name (``"Nvidia K40c"``), both case-insensitively — cache
    records, store shard sidecars and provenance manifests carry the
    full spec name, while CLIs and experiments use the short key.
    """

    def __init__(self, definitions: list[DeviceDefinition] | None = None):
        self._by_key: dict[str, DeviceDefinition] = {}
        self._by_name: dict[str, DeviceDefinition] = {}
        for definition in definitions or []:
            self.add(definition)

    def add(self, definition: DeviceDefinition) -> None:
        """Insert one definition; duplicate key/name is a schema error."""
        key = definition.key.lower()
        name = definition.spec.name.lower()
        clash = self._by_key.get(key)
        if clash is not None:
            raise DeviceSchemaError(
                f"duplicate device key {definition.key!r}: defined by "
                f"both {clash.source} and {definition.source}"
            )
        clash = self._by_name.get(name)
        if clash is not None:
            raise DeviceSchemaError(
                f"duplicate device name {definition.spec.name!r}: "
                f"defined by both {clash.source} (key "
                f"{clash.key!r}) and {definition.source} (key "
                f"{definition.key!r})"
            )
        self._by_key[key] = definition
        self._by_name[name] = definition

    # -- lookup -------------------------------------------------------------

    def find(self, name: str) -> DeviceDefinition | None:
        """Entry for a key or full spec name, or None."""
        lowered = name.lower()
        return self._by_key.get(lowered) or self._by_name.get(lowered)

    def get(self, name: str) -> DeviceDefinition:
        """Entry for a key or full spec name.

        Raises
        ------
        UnknownDeviceError
            Listing every registered device, so the caller can see
            whether a device file is missing from ``$REPRO_DEVICE_DIR``.
        """
        entry = self.find(name)
        if entry is None:
            raise UnknownDeviceError(
                f"unknown device {name!r}; registered devices: "
                f"{self.describe()}"
            )
        return entry

    def describe(self) -> str:
        """One-line ``key (spec name)`` listing for error messages."""
        if not self._by_key:
            return "(none)"
        return ", ".join(
            f"{key} ({entry.spec.name})"
            for key, entry in sorted(self._by_key.items())
        )

    # -- enumeration --------------------------------------------------------

    def entries(self) -> tuple[DeviceDefinition, ...]:
        return tuple(
            self._by_key[key] for key in sorted(self._by_key)
        )

    def keys(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_key))

    def gpu_keys(self) -> tuple[str, ...]:
        return tuple(
            key
            for key in sorted(self._by_key)
            if self._by_key[key].kind == "gpu"
        )

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, name: str) -> bool:
        return self.find(name) is not None

    # -- construction -------------------------------------------------------

    @classmethod
    def load_dirs(cls, dirs: list[Path]) -> "DeviceRegistry":
        """Build a registry from every device file under ``dirs``.

        Files are loaded in sorted order per directory; any schema
        violation (including cross-file duplicates) propagates as a
        :class:`DeviceSchemaError` naming the file.
        """
        registry = cls()
        for directory in dirs:
            directory = Path(directory)
            if not directory.is_dir():
                raise DeviceSchemaError(
                    f"device directory {directory} does not exist"
                )
            paths = sorted(
                p
                for p in directory.iterdir()
                if p.suffix in (".json", ".toml") and p.is_file()
            )
            for path in paths:
                doc = read_device_document(path)
                # Other repro artifact families (fit samples, sweep
                # saves) may share a device directory; skip them by
                # their format tag.  A *device* document with a wrong
                # version tag still fails validation loudly.
                if (
                    isinstance(doc, dict)
                    and isinstance(doc.get("format"), str)
                    and not doc["format"].startswith("repro-device")
                ):
                    continue
                registry.add(parse_device_document(doc, source=str(path)))
        return registry


def bundled_dir() -> Path:
    """Directory of the bundled device definitions."""
    return Path(__file__).resolve().parent / "data"


@lru_cache(maxsize=1)
def bundled_registry() -> DeviceRegistry:
    """Registry of the bundled definitions only (no user directories)."""
    return DeviceRegistry.load_dirs([bundled_dir()])


def _user_dirs() -> list[Path]:
    raw = os.environ.get("REPRO_DEVICE_DIR", "")
    return [Path(part) for part in raw.split(os.pathsep) if part]


@lru_cache(maxsize=1)
def default_registry() -> DeviceRegistry:
    """The process-wide registry: bundled files + ``$REPRO_DEVICE_DIR``.

    Cached per process (device files are immutable inputs of a run);
    :func:`refresh_default_registry` drops the cache after the
    environment changes (tests, long-lived sessions).
    """
    return DeviceRegistry.load_dirs([bundled_dir()] + _user_dirs())


def refresh_default_registry() -> None:
    """Forget the cached default registry (and bundled cache)."""
    default_registry.cache_clear()
    bundled_registry.cache_clear()


# -- convenience lookups ----------------------------------------------------

def get_device(name: str) -> DeviceDefinition:
    """Default-registry lookup by key or spec name (raising)."""
    return default_registry().get(name)


def device_spec(name: str) -> GPUSpec | CPUSpec:
    """The spec of one registered device."""
    return get_device(name).spec


def device_calibration(name: str) -> GPUCalibration:
    """The calibration of one registered GPU.

    Raises
    ------
    UnknownDeviceError
        For unregistered names, or registered CPUs (which carry no
        GPU calibration block).
    """
    entry = get_device(name)
    if entry.calibration is None:
        raise UnknownDeviceError(
            f"device {entry.key!r} ({entry.spec.name}) is a "
            f"{entry.kind} and has no GPU calibration"
        )
    return entry.calibration


def gpu_device_choices() -> tuple[str, ...]:
    """GPU registry keys for CLI ``--device`` flags.

    Falls back to the bundled registry when ``$REPRO_DEVICE_DIR``
    contains a broken file, so parser construction (and ``repro
    devices validate``, the command that diagnoses the breakage) never
    dies while building argument choices; the underlying error still
    surfaces the moment a command resolves a device through
    :func:`default_registry`.
    """
    try:
        return default_registry().gpu_keys()
    except DeviceSchemaError:
        return bundled_registry().gpu_keys()


# -- bundled-parity validation ----------------------------------------------

def validate_bundled() -> list[str]:
    """Check the bundled files reproduce the legacy in-code constants.

    Returns a list of human-readable problems (empty = sound).  This
    is the ``repro devices validate --all`` CI gate: the bundled K40c,
    P100 and Haswell definitions must stay *bit-identical* to
    ``repro.machines.specs`` / ``repro.simgpu.calibration`` — content
    digests (cache keys, store shard identities, provenance) hang off
    those values.
    """
    import dataclasses

    from repro.machines.specs import HASWELL, K40C, P100
    from repro.simgpu.calibration import K40C_CAL, P100_CAL

    legacy: dict[str, tuple[object, object | None]] = {
        "k40c": (K40C, K40C_CAL),
        "p100": (P100, P100_CAL),
        "haswell": (HASWELL, None),
    }
    problems: list[str] = []
    try:
        registry = bundled_registry()
    except DeviceSchemaError as exc:
        return [str(exc)]
    for key, (spec, cal) in legacy.items():
        entry = registry.find(key)
        if entry is None:
            problems.append(
                f"bundled registry is missing the {key!r} definition"
            )
            continue
        if dataclasses.asdict(entry.spec) != dataclasses.asdict(spec):
            problems.append(
                f"{entry.source}: [spec] does not reproduce the "
                f"in-code {key} constants bit-for-bit"
            )
        if cal is not None:
            if entry.calibration is None or (
                dataclasses.asdict(entry.calibration)
                != dataclasses.asdict(cal)
            ):
                problems.append(
                    f"{entry.source}: [calibration] does not reproduce "
                    f"the in-code {key} calibration bit-for-bit"
                )
    return problems
