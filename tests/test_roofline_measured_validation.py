"""Tests for roofline diagnostics, measured sweeps, and model validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.measured import measured_gpu_sweep
from repro.apps.matmul_gpu import MatmulGPUApp
from repro.core.pareto import pareto_front
from repro.energymodel.events import ApplicationProfile
from repro.energymodel.validation import kfold_validation, loocv
from repro.machines import K40C, P100
from repro.measurement.runner import ExperimentRunner
from repro.measurement.session import MeasurementSession
from repro.simgpu.roofline import classify_matmul


class TestRoofline:
    def test_large_tiles_issue_bound(self):
        """The band the paper's fronts live in is issue-bound — BS=32
        wins by shedding shared-memory replays, not bandwidth."""
        for bs in (16, 24, 32):
            assert classify_matmul(P100, 10240, bs).bound == "issue"

    def test_tiny_tiles_memory_side(self):
        for bs in (2, 4, 8):
            assert classify_matmul(P100, 10240, bs).bound in (
                "latency", "bandwidth",
            )

    def test_arithmetic_intensity_formula(self):
        p = classify_matmul(P100, 4096, 32)
        # AI grows ~linearly with BS (traffic ∝ 1/BS).
        p8 = classify_matmul(P100, 4096, 8)
        assert p.arithmetic_intensity > 3 * p8.arithmetic_intensity

    def test_ridge_point_from_spec(self):
        p = classify_matmul(K40C, 4096, 16)
        assert p.ridge_intensity == pytest.approx(
            K40C.peak_dp_flops / K40C.mem_bandwidth_bps
        )

    def test_classical_verdict_exposed(self):
        p = classify_matmul(P100, 10240, 32)
        assert p.classically_compute_bound == (
            p.arithmetic_intensity >= p.ridge_intensity
        )


class TestMeasuredSweep:
    def test_agrees_with_model_truth(self, tmp_path):
        app = MatmulGPUApp(P100, bs_range=(20, 32))
        session = MeasurementSession(
            tmp_path / "s.jsonl", ExperimentRunner(precision=0.02)
        )
        n = 6144
        measured = measured_gpu_sweep(app, n, session, seed=1, min_bs=20)
        truth = app.sweep_points(n, min_bs=20)
        assert len(measured) == len(truth)
        truth_by_key = {
            (p.config["bs"], p.config["g"], p.config["r"]): p for p in truth
        }
        for m in measured:
            t = truth_by_key[(m.config["bs"], m.config["g"], m.config["r"])]
            assert m.time_s == pytest.approx(t.time_s, rel=0.03)
            assert m.energy_j == pytest.approx(t.energy_j, rel=0.05)

    def test_front_structure_survives_measurement(self, tmp_path):
        app = MatmulGPUApp(P100, bs_range=(20, 32))
        session = MeasurementSession(
            tmp_path / "s.jsonl", ExperimentRunner(precision=0.02)
        )
        measured = measured_gpu_sweep(app, 6144, session, seed=2, min_bs=20)
        truth_front = {
            (p.config["bs"], p.config["g"])
            for p in pareto_front(app.sweep_points(6144, min_bs=20))
        }
        measured_front = {
            (p.config["bs"], p.config["g"])
            for p in pareto_front(measured)
        }
        assert len(truth_front.symmetric_difference(measured_front)) <= 2

    def test_resume_skips_work(self, tmp_path):
        app = MatmulGPUApp(K40C, bs_range=(30, 32))
        path = tmp_path / "s.jsonl"
        runner = ExperimentRunner(precision=0.03)
        first = measured_gpu_sweep(
            app, 4096, MeasurementSession(path, runner), seed=3, min_bs=30
        )
        session2 = MeasurementSession(path, runner)
        before = len(session2)
        second = measured_gpu_sweep(app, 4096, session2, seed=3, min_bs=30)
        assert len(session2) == before  # nothing re-measured
        assert len(second) == len(first)

    def test_validation(self, tmp_path):
        app = MatmulGPUApp(P100)
        session = MeasurementSession(tmp_path / "s.jsonl")
        with pytest.raises(ValueError):
            measured_gpu_sweep(app, 4096, session, node_idle_w=-1.0)


def _profiles(rng, n, noise=0.02):
    out = []
    for i in range(n):
        a = float(rng.uniform(1e10, 1e12))
        b = float(rng.uniform(1e8, 1e10))
        e = (20e-12 * a + 90e-12 * b) * (1 + noise * rng.standard_normal())
        out.append(ApplicationProfile(f"p{i}", {"a": a, "b": b}, e, 1.0))
    return out


class TestValidation:
    def test_loocv_on_clean_data(self):
        rng = np.random.default_rng(0)
        result = loocv(_profiles(rng, 12, noise=0.0), ["a", "b"])
        assert result.n_folds == 12
        assert result.max_error < 1e-6

    def test_loocv_error_tracks_noise(self):
        rng = np.random.default_rng(1)
        quiet = loocv(_profiles(rng, 20, noise=0.01), ["a", "b"])
        loud = loocv(_profiles(rng, 20, noise=0.10), ["a", "b"])
        assert loud.mean_error > quiet.mean_error

    def test_loocv_needs_enough_profiles(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            loocv(_profiles(rng, 2), ["a", "b"])

    def test_kfold_covers_every_profile(self):
        rng = np.random.default_rng(3)
        result = kfold_validation(_profiles(rng, 15), ["a", "b"], k=5)
        assert len(result.errors) == 15
        assert result.n_folds == 5

    def test_kfold_deterministic_per_seed(self):
        rng = np.random.default_rng(4)
        profiles = _profiles(rng, 12)
        a = kfold_validation(profiles, ["a", "b"], k=4, seed=7)
        b = kfold_validation(profiles, ["a", "b"], k=4, seed=7)
        assert a.errors == b.errors

    def test_kfold_k_validated(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            kfold_validation(_profiles(rng, 10), ["a", "b"], k=1)

    def test_kfold_underdetermined_fold_rejected(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError, match="underdetermined"):
            kfold_validation(_profiles(rng, 4), ["a", "b", "c", "d"], k=2)
