"""Tests for :mod:`repro.obs` — the telemetry subsystem.

Span nesting and id determinism, the off-mode no-op fast path (with a
measured overhead bound against a vectorized sweep), metrics registry
semantics, JSONL round-trip through ``repro trace``, run-provenance
digests, span-tree determinism across warm vs. cold planner sessions,
the store-integrity warning + counter surface, and the CLI boundary
(``--telemetry`` parsing, ``repro trace``, byte-identical off output).
"""

from __future__ import annotations

import json
import shutil
import time

import pytest

from repro import obs
from repro.cli import main
from repro.machines.specs import K40C, P100
from repro.obs import provenance, trace
from repro.obs.telemetry import _NOOP_SPAN
from repro.simgpu.calibration import K40C_CAL, P100_CAL
from repro.store import ColumnarStore, pack_configs, shard_key
from repro.store.columnar import StoreIntegrityWarning
from repro.sweep import EvalPlanner, SweepEngine, SweepRequest


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    """Every test gets a fresh off-mode global registry."""
    prev = obs.get_telemetry()
    obs.set_telemetry(obs.Telemetry("off"))
    yield
    obs.set_telemetry(prev)


class TestSpans:
    def test_nesting_assigns_sequential_ids_and_parents(self):
        tel = obs.set_telemetry(obs.Telemetry("summary"))
        with obs.span("outer", device="p100"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        assert tel.structure() == [
            (1, None, "outer", (("device", "p100"),)),
            (2, 1, "inner", ()),
            (3, 1, "inner", ()),
        ]
        by_id = {s.span_id: s for s in tel.spans}
        assert by_id[1].depth == 0
        assert by_id[2].depth == 1
        assert all(s.duration_ns >= 0 for s in tel.spans)

    def test_span_set_attaches_mid_span_attrs(self):
        tel = obs.set_telemetry(obs.Telemetry("summary"))
        with obs.span("work") as sp:
            sp.set(points=7)
        assert tel.spans[0].attrs == {"points": 7}

    def test_off_mode_records_nothing(self):
        tel = obs.get_telemetry()  # fixture installed the off registry
        assert obs.span("x", a=1) is _NOOP_SPAN
        with obs.span("x"):
            obs.count("c")
            obs.gauge("g", 1.0)
            obs.observe("h", 2.0)
        assert tel.spans == []
        assert tel.counters == {}
        assert tel.gauges == {}
        assert tel.histograms == {}

    def test_noop_span_is_reentrant_and_shared(self):
        a = obs.span("x")
        with a:
            with obs.span("y") as b:
                assert a is b  # one shared singleton, no allocation


class TestMetrics:
    def test_counters_accumulate(self):
        tel = obs.set_telemetry(obs.Telemetry("summary"))
        obs.count("hits")
        obs.count("hits", 4)
        assert tel.counters == {"hits": 5}

    def test_gauges_are_last_write_wins(self):
        tel = obs.set_telemetry(obs.Telemetry("summary"))
        obs.gauge("ratio", 1.5)
        obs.gauge("ratio", 2.5)
        assert tel.gauges == {"ratio": 2.5}

    def test_histograms_summarize(self):
        tel = obs.set_telemetry(obs.Telemetry("summary"))
        for v in (1.0, 3.0, 2.0):
            obs.observe("wall", v)
        hist = tel.histograms["wall"]
        assert (hist.count, hist.total, hist.min, hist.max) == (3, 6.0, 1.0, 3.0)
        assert hist.mean == 2.0

    def test_merge_counts_folds_worker_side_increments(self):
        tel = obs.set_telemetry(obs.Telemetry("summary"))
        tel.count("chunks")
        tel.merge_counts({"chunks": 2, "points": 100})
        assert tel.counters == {"chunks": 3, "points": 100}

    def test_snapshot_sorts_names(self):
        tel = obs.set_telemetry(obs.Telemetry("summary"))
        obs.count("z")
        obs.count("a")
        assert list(tel.snapshot()["counters"]) == ["a", "z"]


class TestConfigure:
    def test_none_and_off_disable(self):
        assert obs.configure(None).enabled is False
        assert obs.configure("off").enabled is False

    def test_summary_and_jsonl(self, tmp_path):
        assert obs.configure("summary").mode == "summary"
        tel = obs.configure(f"jsonl:{tmp_path / 'run.jsonl'}")
        assert tel.mode == "jsonl"
        assert tel.path == tmp_path / "run.jsonl"

    def test_jsonl_without_path_rejected(self):
        with pytest.raises(ValueError, match="needs a path"):
            obs.configure("jsonl:")

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry spec"):
            obs.configure("csv")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry mode"):
            obs.Telemetry("verbose")


class TestJsonlAndTrace:
    def _sample(self, tmp_path):
        tel = obs.set_telemetry(
            obs.Telemetry("jsonl", tmp_path / "run.jsonl")
        )
        tel.set_manifest(
            provenance.run_manifest("test", backend="vectorized")
        )
        with obs.span("outer", device="p100"):
            with obs.span("inner", points=3):
                obs.count("store.shard.hits", 2)
        return tel.flush() or tel.path

    def test_stream_has_header_provenance_spans_metrics(self, tmp_path):
        self._sample(tmp_path)
        events = trace.load_events(tmp_path / "run.jsonl")
        kinds = [e["event"] for e in events]
        assert kinds == ["header", "provenance", "span", "span", "metrics"]
        assert events[0]["format"] == obs.TELEMETRY_FORMAT
        assert events[1]["format"] == provenance.MANIFEST_FORMAT

    def test_render_covers_tree_metrics_and_provenance(self, tmp_path):
        self._sample(tmp_path)
        out = trace.main(tmp_path / "run.jsonl")
        assert "provenance:" in out
        assert "model_version" in out
        assert "span tree (2 spans" in out
        assert "outer  [device=p100]" in out
        assert "    inner  [points=3]" in out  # nested one level deeper
        assert "store.shard.hits" in out

    def test_self_time_subtracts_direct_children(self, tmp_path):
        tel = obs.set_telemetry(obs.Telemetry("summary"))
        with obs.span("parent"):
            with obs.span("child"):
                time.sleep(0.002)
        out = trace.render_trace(tel.events())
        rows = [
            line.split() for line in out.splitlines() if "ms" not in line
        ]
        parent, child = rows[0], rows[1]
        assert float(parent[1]) <= float(parent[0])  # self <= wall
        assert float(child[0]) > float(parent[1])  # child dominates

    def test_load_rejects_garbage_and_empty(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ValueError, match="not a JSON event line"):
            trace.load_events(bad)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty telemetry stream"):
            trace.load_events(empty)

    def test_main_reports_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="no such file"):
            trace.main(tmp_path / "nope.jsonl")


class TestProvenance:
    def test_manifest_core_fields(self):
        m = provenance.run_manifest("sweep", backend="scalar")
        assert m["format"] == provenance.MANIFEST_FORMAT
        assert m["command"] == "sweep"
        assert m["backend"] == "scalar"
        from repro.sweep.keys import MODEL_VERSION

        assert m["model_version"] == MODEL_VERSION

    def test_requests_digest_is_deterministic_and_order_sensitive(self):
        a = SweepRequest(device="p100", n=4096)
        b = SweepRequest(device="k40c", n=4096)
        d1 = provenance.requests_digest([a, b])
        assert provenance.requests_digest([a, b]) == d1
        assert provenance.requests_digest([b, a]) != d1

    def test_calibration_digest_tracks_constants(self):
        import dataclasses

        base = provenance.calibration_digest(P100, P100_CAL)
        assert provenance.calibration_digest(P100, P100_CAL) == base
        nudged = dataclasses.replace(
            P100_CAL, e_lane_j=P100_CAL.e_lane_j * 1.01
        )
        assert provenance.calibration_digest(P100, nudged) != base

    def test_manifest_names_each_devices_calibration(self):
        reqs = [
            SweepRequest(device="p100", n=2048),
            SweepRequest(device="k40c", n=2048),
        ]
        m = provenance.run_manifest("all", requests=reqs)
        assert set(m["calibrations"]) == {P100.name, K40C.name}
        assert m["requests"] == 2
        assert m["calibrations"][P100.name] == provenance.calibration_digest(
            P100, P100_CAL
        )


def _planner_session(store_dir, reqs):
    """One instrumented planner session; returns (structure, counters)."""
    tel = obs.set_telemetry(obs.Telemetry("summary"))
    planner = EvalPlanner(store_dir=store_dir)
    planner.add_all(reqs)
    planner.execute()
    for req in reqs:
        planner.evaluate_configs(req, req.configs())
    return tel.structure(), dict(tel.counters)


class TestSpanTreeDeterminism:
    """Equal work ⇒ equal span skeleton + counters, cold and warm."""

    def _requests(self):
        return [
            SweepRequest(device="p100", n=2048),
            SweepRequest(device="p100", n=4096),
            SweepRequest(device="k40c", n=2048),
        ]

    def test_cold_sessions_are_structurally_identical(self, tmp_path):
        s1, c1 = _planner_session(tmp_path / "a", self._requests())
        s2, c2 = _planner_session(tmp_path / "b", self._requests())
        assert s1 == s2
        assert c1 == c2
        assert c1["planner.points.computed"] > 0

    def test_warm_sessions_are_structurally_identical(self, tmp_path):
        _planner_session(tmp_path / "s", self._requests())  # fill
        w1, c1 = _planner_session(tmp_path / "s", self._requests())
        w2, c2 = _planner_session(tmp_path / "s", self._requests())
        assert w1 == w2
        assert c1 == c2
        # Warm sessions are store-served: no mega-batch fills at all.
        assert c1.get("planner.points.computed", 0) == 0
        assert not any(name == "planner.fill_misses" for _, _, name, _ in w1)
        assert c1["planner.store_hits"] > 0

    def test_warm_differs_from_cold_only_in_fill_spans(self, tmp_path):
        cold, _ = _planner_session(tmp_path / "s", self._requests())
        warm, _ = _planner_session(tmp_path / "s", self._requests())
        names = lambda struct: [name for _, _, name, _ in struct]  # noqa: E731
        kept = [
            n for n in names(cold)
            if n not in (
                "planner.fill_misses", "batch.run_matmul", "store.append"
            )
        ]
        assert names(warm) == kept


class TestOffPathOverhead:
    def test_off_path_adds_under_two_percent_to_a_vectorized_sweep(self):
        """Bound the no-op instrumentation cost against real sweep work.

        The instrumented sweep path executes a small constant number of
        helper calls per *batch* (spans + counters), never per point.
        Measure the per-call cost of the off fast path directly and
        compare a generous 100-call budget against the measured wall
        time of one vectorized sweep — the overhead must stay < 2%.
        """
        assert obs.get_telemetry().enabled is False
        engine = SweepEngine(backend="vectorized")
        req = SweepRequest(device="p100", n=4096)
        configs = req.configs()
        sweep_s = min(
            _timed(lambda: engine.evaluate_configs(req, configs))
            for _ in range(5)
        )

        def helper_pairs(calls=2000):
            t0 = time.perf_counter()
            for _ in range(calls):
                with obs.span("x", device="p100", points=146):
                    pass
                obs.count("c", 146)
            return (time.perf_counter() - t0) / calls

        per_pair_s = min(helper_pairs() for _ in range(5))

        budget = 20  # actual instrumented path: ~a dozen sites per batch
        assert budget * per_pair_s < 0.02 * sweep_s, (
            f"off-path span+counter pair costs {per_pair_s * 1e9:.0f} ns; "
            f"{budget} sites would add "
            f"{budget * per_pair_s / sweep_s:.2%} to a "
            f"{sweep_s * 1e3:.2f} ms vectorized sweep"
        )


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


class TestStoreIntegritySurface:
    def _filled_store(self, tmp_path):
        key = shard_key(P100, P100_CAL, 4096, backend="scalar")
        store = ColumnarStore(tmp_path)
        store.append(key, [4, 8], [2, 2], [12, 12], [1.0, 2.0], [10.0, 20.0])
        return key, store

    def test_corrupt_shard_warns_and_counts(self, tmp_path):
        key, store = self._filled_store(tmp_path)
        store.shard_path(key).write_bytes(b"not a zip archive")
        tel = obs.set_telemetry(obs.Telemetry("summary"))
        fresh = ColumnarStore(tmp_path)
        packed, *_ = pack_configs(
            [type("C", (), {"bs": 4, "g": 2, "r": 12})()]
        )
        with pytest.warns(StoreIntegrityWarning, match="corrupt"):
            _, _, hit = fresh.lookup(key, packed)
        assert not hit.any()
        assert tel.counters["store.shard.corrupt"] == 1
        assert tel.counters["store.shard.recompute_fallbacks"] == 1

    def test_stale_shard_warns_and_counts(self, tmp_path):
        key, store = self._filled_store(tmp_path)
        other = shard_key(P100, P100_CAL, 8192, backend="scalar")
        shutil.copy(store.shard_path(key), store.shard_path(other))
        shutil.copy(store.meta_path(key), store.meta_path(other))
        tel = obs.set_telemetry(obs.Telemetry("summary"))
        fresh = ColumnarStore(tmp_path)
        packed, *_ = pack_configs(
            [type("C", (), {"bs": 4, "g": 2, "r": 12})()]
        )
        with pytest.warns(StoreIntegrityWarning, match="stale"):
            fresh.lookup(other, packed)
        assert tel.counters["store.shard.stale"] == 1
        assert tel.counters["store.shard.recompute_fallbacks"] == 1

    def test_sound_lookup_counts_hits_without_warning(self, tmp_path):
        key, _ = self._filled_store(tmp_path)
        tel = obs.set_telemetry(obs.Telemetry("summary"))
        fresh = ColumnarStore(tmp_path)
        packed, *_ = pack_configs(
            [type("C", (), {"bs": 4, "g": 2, "r": 12})()]
        )
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", StoreIntegrityWarning)
            _, _, hit = fresh.lookup(key, packed)
        assert hit.all()
        assert tel.counters["store.shard.hits"] == 1
        assert "store.shard.recompute_fallbacks" not in tel.counters


class TestCliTelemetry:
    def test_summary_mode_appends_digest(self, capsys):
        assert main(
            ["sweep", "--device", "p100", "--n", "2048",
             "--telemetry", "summary"]
        ) == 0
        out = capsys.readouterr().out
        assert "-- telemetry summary --" in out
        assert "cli.sweep" in out
        assert "sweep.points.requested" in out

    def test_off_is_byte_identical_to_default(self, capsys):
        assert main(["sweep", "--device", "p100", "--n", "2048"]) == 0
        default = capsys.readouterr().out
        assert main(
            ["sweep", "--device", "p100", "--n", "2048",
             "--telemetry", "off"]
        ) == 0
        assert capsys.readouterr().out == default
        assert "telemetry" not in default

    def test_jsonl_then_trace_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(
            ["sweep", "--device", "k40c", "--n", "2048",
             "--backend", "vectorized", "--telemetry", f"jsonl:{path}"]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "cli.sweep" in out
        assert "batch.run_matmul" in out
        assert "provenance:" in out

    def test_jsonl_provenance_names_the_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        main(
            ["sweep", "--device", "p100", "--n", "2048",
             "--telemetry", f"jsonl:{path}"]
        )
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        prov = next(e for e in events if e["event"] == "provenance")
        assert prov["command"] == "sweep"
        assert prov["device"] == "p100"
        assert prov["requests"] == 1
        assert len(prov["inputs_digest"]) == 64

    def test_bad_spec_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="unknown telemetry spec"):
            main(["sweep", "--telemetry", "xml"])

    def test_trace_on_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no such file"):
            main(["trace", str(tmp_path / "gone.jsonl")])
