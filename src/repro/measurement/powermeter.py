"""WattsUp Pro power-meter simulation.

The paper measures energy with a WattsUp Pro meter sitting "between the
wall A/C outlets and the input power sockets of the node", sampled over
a serial USB interface by a Perl script (Section V).  The meter reports
total node power about once per second with ±1.5% accuracy and 0.1 W
display resolution.

:class:`PowerMeter` reproduces that measurement channel over a
simulated power trace:

* the *true* node power is a piecewise-constant function of time
  supplied as a :class:`PowerTrace` (idle baseline plus the device's
  activity phases);
* the meter samples it at a fixed interval (default 1 s), applying
  multiplicative Gaussian sensor noise and 0.1 W quantization;
* :meth:`PowerMeter.sample_run` returns the sample series a logging
  script would capture for one application run, from which the
  HCLWattsUp layer computes energies.

Everything is deterministic given the RNG seed, so the statistical
protocol on top behaves like the paper's: repeated runs of the same
configuration give noisy-but-converging sample means.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = ["PowerPhase", "PowerTrace", "PowerSample", "PowerMeter"]


@dataclass(frozen=True)
class PowerPhase:
    """One piecewise-constant segment of true node power.

    Attributes
    ----------
    duration_s:
        Length of the phase in seconds (strictly positive).
    power_w:
        True total node power during the phase, in watts — i.e. idle
        baseline plus the dynamic power of whatever is running.
    """

    duration_s: float
    power_w: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("phase duration must be positive")
        if self.power_w < 0:
            raise ValueError("phase power must be non-negative")


@dataclass(frozen=True)
class PowerTrace:
    """A sequence of power phases describing one application run.

    The trace typically looks like: pre-run idle, kernel-active phase
    (possibly several, e.g. one per kernel group), post-run idle.
    """

    phases: tuple[PowerPhase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("trace needs at least one phase")

    @property
    def total_duration_s(self) -> float:
        return sum(p.duration_s for p in self.phases)

    def power_at(self, t: float) -> float:
        """True instantaneous power at time ``t`` from trace start."""
        if t < 0:
            raise ValueError("time must be non-negative")
        elapsed = 0.0
        for phase in self.phases:
            elapsed += phase.duration_s
            if t < elapsed:
                return phase.power_w
        return self.phases[-1].power_w

    def true_energy_j(self) -> float:
        """Exact energy under the trace (ground truth for tests)."""
        return sum(p.duration_s * p.power_w for p in self.phases)


@dataclass(frozen=True)
class PowerSample:
    """One logged meter reading."""

    t_s: float
    power_w: float


@dataclass
class PowerMeter:
    """Simulated WattsUp Pro meter.

    Attributes
    ----------
    sample_interval_s:
        Meter logging interval; the WattsUp Pro reports ~1 Hz.
    noise_fraction:
        1-sigma multiplicative sensor noise; the WattsUp Pro is
        specified at ±1.5% accuracy, which we treat as ~3 sigma.
    quantization_w:
        Display/serial resolution (0.1 W on the WattsUp Pro).
    dropout_probability:
        Probability that a sample is lost on the serial link (the real
        logging script observes occasional missing lines); lost samples
        are reported by repeating the previous reading, exactly what
        the HCLWattsUp collection script does.
    stuck_probability:
        Probability that the meter's display freezes for one interval
        (reports the prior value despite new input) — a documented
        WattsUp firmware quirk.  Both failure modes default to off.
    rng:
        Seeded generator; runs are reproducible and independent draws
        model run-to-run measurement variation.
    """

    sample_interval_s: float = 1.0
    noise_fraction: float = 0.005
    quantization_w: float = 0.1
    dropout_probability: float = 0.0
    stuck_probability: float = 0.0
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    def __post_init__(self) -> None:
        if self.sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        if self.noise_fraction < 0:
            raise ValueError("noise fraction must be non-negative")
        if self.quantization_w < 0:
            raise ValueError("quantization must be non-negative")
        for name in ("dropout_probability", "stuck_probability"):
            p = getattr(self, name)
            if not (0.0 <= p < 1.0):
                raise ValueError(f"{name} must lie in [0, 1)")

    def sample_run(self, trace: PowerTrace) -> list[PowerSample]:
        """Log one application run; returns ≥ 2 samples.

        Samples are taken at the midpoint of each logging interval (the
        meter integrates internally over its reporting window), with
        sensor noise and quantization applied.  Short traces are padded
        by continuing the final phase so at least two samples exist —
        mirroring how the real logging script keeps sampling until told
        to stop.
        """
        duration = max(trace.total_duration_s, 2 * self.sample_interval_s)
        n = int(np.ceil(duration / self.sample_interval_s))
        times = (np.arange(n) + 0.5) * self.sample_interval_s
        true = np.array([trace.power_at(t) for t in times])
        if self.noise_fraction > 0:
            noisy = true * (1.0 + self.rng.normal(0.0, self.noise_fraction, n))
        else:
            noisy = true.copy()
        noisy = np.maximum(noisy, 0.0)
        if self.quantization_w > 0:
            noisy = np.round(noisy / self.quantization_w) * self.quantization_w
        if self.dropout_probability > 0 or self.stuck_probability > 0:
            fail = self.rng.random(n) < (
                self.dropout_probability + self.stuck_probability
            )
            fail[0] = False  # the first sample always arrives
            for i in range(1, n):
                if fail[i]:
                    noisy[i] = noisy[i - 1]  # hold the previous reading
        return [PowerSample(float(t), float(p)) for t, p in zip(times, noisy)]

    def measure_energy_j(self, trace: PowerTrace) -> float:
        """Convenience: rectangle-rule energy of one sampled run.

        This is what a naive logging script computes: sum of samples
        times the logging interval.  The HCLWattsUp layer refines this
        with baseline subtraction; tests verify the estimate converges
        to :meth:`PowerTrace.true_energy_j` for long traces.
        """
        samples = self.sample_run(trace)
        return sum(s.power_w for s in samples) * self.sample_interval_s
