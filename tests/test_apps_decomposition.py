"""Tests for the Fig. 3 matrix decomposition and weak-EP constraints."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.decomposition import (
    DecompositionError,
    ThreadAssignment,
    decompose,
    verify_weak_ep_constraints,
)


class TestDecompose:
    def test_single_thread_owns_everything(self):
        groups = decompose(1024, 1, 1)
        assert len(groups) == 1
        t = groups[0].threads[0]
        assert (t.row_start, t.row_end) == (0, 1024)

    def test_fig3_structure(self):
        # 4 groups × 3 threads over N=17408-like divisible size.
        groups = decompose(1200, 4, 3)
        assert len(groups) == 4
        for g in groups:
            assert g.row_end - g.row_start == 300
            assert len(g.threads) == 3
            for t in g.threads:
                assert t.rows == 100
                assert g.row_start <= t.row_start < t.row_end <= g.row_end

    def test_groups_are_contiguous_slabs(self):
        groups = decompose(96, 4, 2)
        starts = [g.row_start for g in groups]
        assert starts == [0, 24, 48, 72]

    def test_flops_accounting(self):
        groups = decompose(120, 2, 3)
        total = sum(t.flops(120) for g in groups for t in g.threads)
        assert total == pytest.approx(2.0 * 120**3)

    def test_indivisible_configuration_rejected(self):
        with pytest.raises(DecompositionError, match="not divisible"):
            decompose(100, 3, 2)

    def test_invalid_sizes(self):
        with pytest.raises(DecompositionError):
            decompose(0, 1, 1)
        with pytest.raises(DecompositionError):
            decompose(16, 0, 4)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=20),
    )
    def test_property_constraints_always_satisfied(self, p, t, scale):
        n = p * t * scale
        groups = decompose(n, p, t)
        verify_weak_ep_constraints(n, groups)  # must not raise


class TestVerify:
    def test_detects_unequal_workload(self):
        bad = decompose(96, 2, 2)
        tampered = [
            bad[0],
            type(bad[1])(
                group=1,
                row_start=48,
                row_end=96,
                threads=(
                    ThreadAssignment(1, 0, 48, 70),
                    ThreadAssignment(1, 1, 70, 96),
                ),
            ),
        ]
        with pytest.raises(DecompositionError, match="unequal"):
            verify_weak_ep_constraints(96, tampered)

    def test_detects_gap(self):
        groups = decompose(96, 2, 2)
        truncated = groups[:1]
        with pytest.raises(DecompositionError):
            verify_weak_ep_constraints(96, truncated)

    def test_detects_overlap(self):
        g = decompose(96, 1, 2)[0]
        overlapping = [
            type(g)(
                group=0,
                row_start=0,
                row_end=96,
                threads=(
                    ThreadAssignment(0, 0, 0, 48),
                    ThreadAssignment(0, 1, 24, 72),
                ),
            )
        ]
        with pytest.raises(DecompositionError):
            verify_weak_ep_constraints(96, overlapping)

    def test_empty_rejected(self):
        with pytest.raises(DecompositionError, match="no threads"):
            verify_weak_ep_constraints(10, [])
