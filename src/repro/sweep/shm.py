"""Shared-memory result transport for the process-pool sweep path.

The original parallel path shipped every chunk's results back through
the ``ProcessPoolExecutor`` future machinery: each worker built a list
of ``(time_s, energy_j)`` tuples, pickled it, and the parent unpickled
and re-assembled — one allocation and one copy per point on each side
of the pipe.  At paper scale that transport overhead was larger than
the evaluation itself, which is why ``BENCH_sweep.json`` showed
``mode="parallel"`` *losing* to serial.

This module replaces the transport with one
:class:`multiprocessing.shared_memory.SharedMemory` segment per
parallel fill, laid out as a :data:`POINT_DTYPE` structured array:

* the parent writes the ``bs``/``g``/``r`` key columns once, before
  the fan-out (workers never unpickle a config list);
* each worker attaches to the segment by name, evaluates its
  ``[start, stop)`` row range, and writes ``time_s``/``energy_j``
  directly at its offsets — no result pickling, no reassembly;
* the parent reads the filled columns back as NumPy views.

The only pickled per-task payload is ``(name, start, stop)`` plus the
frozen spec/calibration dataclasses — constant-size regardless of the
chunk.  Workers are still pure: the evaluation call is exactly the one
the serial path makes, which keeps the parallel path bit-identical to
serial (``tests/test_sweep_parity.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["POINT_DTYPE", "SharedPointBuffer", "fill_rows_shm"]

#: Structured row type results flow through on the hot path: the packed
#: configuration key columns plus the two objective columns.  Shared by
#: the planner's serving tables, the engine's ``table()`` protocol and
#: the shared-memory transport.
POINT_DTYPE = np.dtype(
    [
        ("bs", np.int64),
        ("g", np.int64),
        ("r", np.int64),
        ("time_s", np.float64),
        ("energy_j", np.float64),
    ]
)


class SharedPointBuffer:
    """One sweep's :data:`POINT_DTYPE` table in a shared-memory segment.

    Context manager owning the segment lifecycle on the parent side:
    ``create()`` on entry, ``close() + unlink()`` on exit (the segment
    never outlives the fill).  Workers attach by :attr:`name` through
    :func:`attach_rows` and must *not* unlink.
    """

    def __init__(self, n_rows: int) -> None:
        self.n_rows = n_rows
        self.nbytes = max(1, n_rows * POINT_DTYPE.itemsize)
        self._shm = None

    def __enter__(self) -> "SharedPointBuffer":
        from multiprocessing import shared_memory

        self._shm = shared_memory.SharedMemory(create=True, size=self.nbytes)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._shm is not None:
            # Drop the array view before closing: SharedMemory refuses
            # to close while exported buffers are alive.
            shm, self._shm = self._shm, None
            shm.close()
            shm.unlink()

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def rows(self) -> np.ndarray:
        """The full table as a zero-copy view of the segment."""
        return np.ndarray(
            (self.n_rows,), dtype=POINT_DTYPE, buffer=self._shm.buf
        )


def attach_rows(shm, n_rows: int) -> np.ndarray:
    """A worker-side zero-copy view of an attached segment."""
    return np.ndarray((n_rows,), dtype=POINT_DTYPE, buffer=shm.buf)


def fill_rows_shm(
    shm_name: str,
    n_rows: int,
    start: int,
    stop: int,
    spec,
    cal,
    n: int,
) -> float:
    """Process-pool entry point: evaluate rows ``[start, stop)`` in place.

    Attaches to the parent's segment, reads its slice of the key
    columns, evaluates each configuration with the exact serial-path
    call (``GPUDevice.run_matmul``, no noise RNG), and writes the
    objective columns at the same offsets.  Returns the worker-side
    wall seconds so the parent can aggregate per-chunk timings into its
    telemetry registry (workers cannot reach it directly).
    """
    import time

    from multiprocessing import shared_memory

    from repro.simgpu.device import GPUDevice

    t0 = time.perf_counter()
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        rows = attach_rows(shm, n_rows)
        device = GPUDevice(spec, cal)
        for i in range(start, stop):
            result = device.run_matmul(
                n, int(rows["bs"][i]), int(rows["g"][i]), int(rows["r"][i])
            )
            rows["time_s"][i] = result.time_s
            rows["energy_j"][i] = result.dynamic_energy_j
        del rows  # release the exported buffer before close()
    finally:
        shm.close()
    return time.perf_counter() - t0
