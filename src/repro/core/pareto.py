"""Pareto-front machinery for bi-objective (time, energy) optimization.

The paper analyzes the trade-off between *execution time* and *dynamic
energy* over the discrete set of application configurations solving the
same workload.  Both objectives are minimized.  This module provides:

* dominance tests and global Pareto-front extraction
  (:func:`pareto_front`),
* *local* Pareto fronts over configuration sub-regions
  (:func:`local_pareto_front`), used for the K40c whose global front
  degenerates to one point (paper Section V.B),
* ε-approximate fronts (:func:`epsilon_pareto_front`),
* the bi-objective hypervolume indicator (:func:`hypervolume_2d`) as a
  front-quality measure beyond the paper's point counts, and
* non-dominated sorting (:func:`nondominated_sort`) which ranks every
  configuration by Pareto layer.

All functions operate on :class:`ParetoPoint` records so callers can
carry an arbitrary configuration payload through the analysis.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "ParetoPoint",
    "dominates",
    "pareto_front",
    "local_pareto_front",
    "epsilon_pareto_front",
    "nondominated_sort",
    "hypervolume_2d",
    "front_spread",
    "front_indices",
    "front_mask",
]


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate solution in (time, energy) objective space.

    Attributes
    ----------
    time_s:
        Execution time objective (seconds, minimized).
    energy_j:
        Dynamic energy objective (joules, minimized).
    config:
        Opaque payload identifying the application configuration that
        produced this point (e.g. a ``(BS, G, R)`` tuple).  Not used in
        dominance comparisons.
    """

    time_s: float
    energy_j: float
    config: Any = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.time_s) or not math.isfinite(self.energy_j):
            raise ValueError(
                f"objectives must be finite, got time={self.time_s} "
                f"energy={self.energy_j}"
            )
        if self.time_s < 0 or self.energy_j < 0:
            raise ValueError(
                f"objectives must be non-negative, got time={self.time_s} "
                f"energy={self.energy_j}"
            )

    def objectives(self) -> tuple[float, float]:
        """Return the ``(time, energy)`` objective tuple."""
        return (self.time_s, self.energy_j)


def dominates(a: ParetoPoint, b: ParetoPoint, *, tol: float = 0.0) -> bool:
    """Return True if ``a`` Pareto-dominates ``b`` (both minimized).

    ``a`` dominates ``b`` when it is no worse in both objectives and
    strictly better in at least one.  ``tol`` is an absolute slack: a
    difference smaller than ``tol`` counts as "no worse" but not as
    "strictly better", which makes the relation robust to measurement
    noise at the cost of no longer being a strict partial order for
    ``tol > 0``.
    """
    if tol < 0:
        raise ValueError("tol must be non-negative")
    no_worse = a.time_s <= b.time_s + tol and a.energy_j <= b.energy_j + tol
    strictly_better = a.time_s < b.time_s - tol or a.energy_j < b.energy_j - tol
    return no_worse and strictly_better


def _as_points(points: Iterable[ParetoPoint | tuple]) -> list[ParetoPoint]:
    """Coerce raw ``(time, energy[, config])`` tuples to ParetoPoints."""
    out: list[ParetoPoint] = []
    for p in points:
        if isinstance(p, ParetoPoint):
            out.append(p)
        else:
            t, e, *rest = p
            out.append(ParetoPoint(float(t), float(e), rest[0] if rest else None))
    return out


def pareto_front(points: Iterable[ParetoPoint | tuple]) -> list[ParetoPoint]:
    """Extract the global Pareto front, sorted by increasing time.

    Uses the classic sweep: sort by (time, energy) and keep points whose
    energy strictly improves on the best seen so far.  Duplicate
    objective vectors are collapsed to a single representative (the
    first in sorted order), matching the paper's treatment of fronts as
    sets of objective points.  Complexity O(n log n).
    """
    pts = _as_points(points)
    if not pts:
        return []
    pts.sort(key=lambda p: (p.time_s, p.energy_j))
    front: list[ParetoPoint] = []
    best_energy = math.inf
    for p in pts:
        if p.energy_j < best_energy:
            front.append(p)
            best_energy = p.energy_j
    return front


def front_indices(times, energies) -> np.ndarray:
    """Indices of the Pareto front of two objective columns, front order.

    The array-native kernel behind :func:`pareto_front`: given
    index-aligned ``time_s`` / ``energy_j`` columns (any array-likes),
    returns the indices of the front members ordered by increasing
    time.  Exactly equivalent to ``pareto_front`` on the same data —
    ``np.lexsort`` is stable like ``list.sort``, so tie-breaking and
    the duplicate-collapse (first representative in sorted order) are
    identical — but never materializes a :class:`ParetoPoint`; callers
    on the columnar fast path keep everything in NumPy and adapt to
    points only at the reporting boundary.
    """
    times = np.asarray(times, dtype=np.float64)
    energies = np.asarray(energies, dtype=np.float64)
    if times.size == 0:
        return np.empty(0, dtype=np.intp)
    order = np.lexsort((energies, times))  # stable sort by (time, energy)
    e_sorted = energies[order]
    keep = np.empty(order.size, dtype=bool)
    keep[0] = True
    # Strict improvement over the running minimum — the same "energy
    # strictly improves on the best seen so far" rule as pareto_front.
    keep[1:] = e_sorted[1:] < np.minimum.accumulate(e_sorted)[:-1]
    return order[keep]


def front_mask(times, energies) -> np.ndarray:
    """Boolean front membership over the *input* order.

    ``front_mask(t, e)`` marks exactly the rows ``front_indices``
    selects; useful when the caller wants to subset other columns of a
    structured array without reordering.
    """
    times = np.asarray(times, dtype=np.float64)
    mask = np.zeros(times.shape, dtype=bool)
    mask[front_indices(times, energies)] = True
    return mask


def local_pareto_front(
    points: Iterable[ParetoPoint | tuple],
    region: Callable[[ParetoPoint], bool],
) -> list[ParetoPoint]:
    """Pareto front restricted to the configurations in ``region``.

    The paper reports *local* Pareto fronts for the K40c: the global
    front degenerates to a single point (BS=32), but sub-regions of the
    configuration space — e.g. configurations with BS ≤ 31 — contain
    "regions of high energy nonproportionality that provide many
    diverse trade-off solutions" (Section V.B).  ``region`` is a
    predicate over points (typically inspecting ``point.config``).
    """
    return pareto_front(p for p in _as_points(points) if region(p))


def epsilon_pareto_front(
    points: Iterable[ParetoPoint | tuple], epsilon: float
) -> list[ParetoPoint]:
    """Multiplicative ε-approximate Pareto front.

    Returns a subset ``S`` of the exact front such that every exact
    front point is (1+ε)-dominated by some member of ``S``: for each
    front point ``p`` there is ``s ∈ S`` with ``s.time ≤ (1+ε)·p.time``
    and ``s.energy ≤ (1+ε)·p.energy``.  Useful for thinning dense
    fronts before presenting trade-offs to a user.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    front = pareto_front(points)
    kept: list[ParetoPoint] = []
    scale = 1.0 + epsilon
    # The front is sorted by increasing time with strictly decreasing
    # energy, so every kept point already satisfies the time condition
    # (s.time ≤ p.time ≤ scale·p.time) and the energy condition is
    # tightest for the *last* kept point — one O(1) test per point
    # instead of a scan over ``kept``.
    for p in front:
        if kept and kept[-1].energy_j <= scale * p.energy_j:
            continue
        kept.append(p)
    return kept


def nondominated_sort(
    points: Iterable[ParetoPoint | tuple],
) -> list[list[ParetoPoint]]:
    """Partition points into Pareto layers (fronts of rank 0, 1, ...).

    Rank 0 is the global Pareto front; rank ``k`` is the front of the
    remaining points once ranks ``< k`` are removed.  Duplicate
    objective vectors beyond the first representative are assigned to
    the next layer (they are mutually non-dominating but add no new
    trade-off).

    Single-sort staircase algorithm, O(n log n) total: process points
    in (time, energy) order and assign each to the first layer whose
    current minimum energy still exceeds the point's energy — exactly
    the layer the repeated-:func:`pareto_front`-peeling formulation
    would give it, because a sorted-order point is excluded from a
    layer iff an earlier point kept in that layer has energy ≤ its own.
    The per-layer minimum energies form a non-decreasing array (a point
    lands in layer k+1 only when its energy is at least layer k's
    minimum), so the first admissible layer is a binary search.
    """
    pts = _as_points(points)
    order = sorted(range(len(pts)), key=lambda i: (pts[i].time_s, pts[i].energy_j))
    layers: list[list[ParetoPoint]] = []
    min_energy: list[float] = []  # per-layer minimum energy, non-decreasing
    for i in order:
        p = pts[i]
        layer = bisect_right(min_energy, p.energy_j)
        if layer == len(layers):
            layers.append([])
            min_energy.append(p.energy_j)
        else:
            min_energy[layer] = p.energy_j
        layers[layer].append(p)
    return layers


def hypervolume_2d(
    front: Sequence[ParetoPoint],
    reference: tuple[float, float],
) -> float:
    """Hypervolume (area) dominated by ``front`` w.r.t. ``reference``.

    ``reference`` is a (time, energy) point that must be weakly
    dominated by every front member; points at or beyond the reference
    contribute zero area.  For a 2-D minimization front the hypervolume
    is the union of axis-aligned rectangles between each front point
    and the reference, computed by a left-to-right sweep.
    """
    ref_t, ref_e = reference
    pts = sorted(
        (p for p in front if p.time_s < ref_t and p.energy_j < ref_e),
        key=lambda p: p.time_s,
    )
    # Keep only the non-dominated prefix in sweep order.
    area = 0.0
    prev_energy = ref_e
    for p in pts:
        if p.energy_j >= prev_energy:
            continue  # dominated in this sweep; contributes nothing new
        area += (ref_t - p.time_s) * (prev_energy - p.energy_j)
        prev_energy = p.energy_j
    return area


def front_spread(front: Sequence[ParetoPoint]) -> tuple[float, float]:
    """Relative extent of a front in each objective.

    Returns ``(time_spread, energy_spread)`` where each spread is
    ``(max - min) / min`` over the front, or ``(0, 0)`` for fronts with
    fewer than two points.  The paper's headline numbers (e.g. "50%
    dynamic energy saving for 11% performance degradation") are exactly
    the energy and time spreads of the global front.
    """
    if len(front) < 2:
        return (0.0, 0.0)
    times = np.array([p.time_s for p in front])
    energies = np.array([p.energy_j for p in front])
    t_min, e_min = times.min(), energies.min()
    if t_min <= 0 or e_min <= 0:
        raise ValueError("front objectives must be positive to compute spread")
    return (
        float(times.max() / t_min - 1.0),
        float(energies.max() / e_min - 1.0),
    )
