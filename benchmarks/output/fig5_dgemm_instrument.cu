// Blocked matrix multiplication instrument for energy-
// proportionality analysis (regenerated Fig. 5 of Manumachu &
// Lastovetsky, IPPS 2022).  One dgemmG<g> per group size; one
// dgemm<BS> dispatcher per tile dimension.

template <int BS> __device__ void dgemmG1(
        double *C, double *A, double *B, int N) {
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
}

template <int BS> __device__ void dgemmG2(
        double *C, double *A, double *B, int N) {
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
}

template <int BS> __device__ void dgemmG3(
        double *C, double *A, double *B, int N) {
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
}

template <int BS> __device__ void dgemmG4(
        double *C, double *A, double *B, int N) {
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
}

template <int BS> __device__ void dgemmG5(
        double *C, double *A, double *B, int N) {
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
}

template <int BS> __device__ void dgemmG6(
        double *C, double *A, double *B, int N) {
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
}

template <int BS> __device__ void dgemmG7(
        double *C, double *A, double *B, int N) {
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
}

template <int BS> __device__ void dgemmG8(
        double *C, double *A, double *B, int N) {
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
    __syncthreads();
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}
}

// BS=1: 16 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm1(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<1>(C, A, B, N);
        if (G == 2)
            dgemmG2<1>(C, A, B, N);
        if (G == 3)
            dgemmG3<1>(C, A, B, N);
        if (G == 4)
            dgemmG4<1>(C, A, B, N);
        if (G == 5)
            dgemmG5<1>(C, A, B, N);
        if (G == 6)
            dgemmG6<1>(C, A, B, N);
        if (G == 7)
            dgemmG7<1>(C, A, B, N);
        if (G == 8)
            dgemmG8<1>(C, A, B, N);
    }
}

// BS=2: 64 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm2(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<2>(C, A, B, N);
        if (G == 2)
            dgemmG2<2>(C, A, B, N);
        if (G == 3)
            dgemmG3<2>(C, A, B, N);
        if (G == 4)
            dgemmG4<2>(C, A, B, N);
        if (G == 5)
            dgemmG5<2>(C, A, B, N);
        if (G == 6)
            dgemmG6<2>(C, A, B, N);
        if (G == 7)
            dgemmG7<2>(C, A, B, N);
        if (G == 8)
            dgemmG8<2>(C, A, B, N);
    }
}

// BS=3: 144 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm3(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<3>(C, A, B, N);
        if (G == 2)
            dgemmG2<3>(C, A, B, N);
        if (G == 3)
            dgemmG3<3>(C, A, B, N);
        if (G == 4)
            dgemmG4<3>(C, A, B, N);
        if (G == 5)
            dgemmG5<3>(C, A, B, N);
        if (G == 6)
            dgemmG6<3>(C, A, B, N);
        if (G == 7)
            dgemmG7<3>(C, A, B, N);
        if (G == 8)
            dgemmG8<3>(C, A, B, N);
    }
}

// BS=4: 256 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm4(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<4>(C, A, B, N);
        if (G == 2)
            dgemmG2<4>(C, A, B, N);
        if (G == 3)
            dgemmG3<4>(C, A, B, N);
        if (G == 4)
            dgemmG4<4>(C, A, B, N);
        if (G == 5)
            dgemmG5<4>(C, A, B, N);
        if (G == 6)
            dgemmG6<4>(C, A, B, N);
        if (G == 7)
            dgemmG7<4>(C, A, B, N);
        if (G == 8)
            dgemmG8<4>(C, A, B, N);
    }
}

// BS=5: 400 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm5(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<5>(C, A, B, N);
        if (G == 2)
            dgemmG2<5>(C, A, B, N);
        if (G == 3)
            dgemmG3<5>(C, A, B, N);
        if (G == 4)
            dgemmG4<5>(C, A, B, N);
        if (G == 5)
            dgemmG5<5>(C, A, B, N);
        if (G == 6)
            dgemmG6<5>(C, A, B, N);
        if (G == 7)
            dgemmG7<5>(C, A, B, N);
        if (G == 8)
            dgemmG8<5>(C, A, B, N);
    }
}

// BS=6: 576 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm6(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<6>(C, A, B, N);
        if (G == 2)
            dgemmG2<6>(C, A, B, N);
        if (G == 3)
            dgemmG3<6>(C, A, B, N);
        if (G == 4)
            dgemmG4<6>(C, A, B, N);
        if (G == 5)
            dgemmG5<6>(C, A, B, N);
        if (G == 6)
            dgemmG6<6>(C, A, B, N);
        if (G == 7)
            dgemmG7<6>(C, A, B, N);
        if (G == 8)
            dgemmG8<6>(C, A, B, N);
    }
}

// BS=7: 784 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm7(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<7>(C, A, B, N);
        if (G == 2)
            dgemmG2<7>(C, A, B, N);
        if (G == 3)
            dgemmG3<7>(C, A, B, N);
        if (G == 4)
            dgemmG4<7>(C, A, B, N);
        if (G == 5)
            dgemmG5<7>(C, A, B, N);
        if (G == 6)
            dgemmG6<7>(C, A, B, N);
        if (G == 7)
            dgemmG7<7>(C, A, B, N);
        if (G == 8)
            dgemmG8<7>(C, A, B, N);
    }
}

// BS=8: 1024 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm8(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<8>(C, A, B, N);
        if (G == 2)
            dgemmG2<8>(C, A, B, N);
        if (G == 3)
            dgemmG3<8>(C, A, B, N);
        if (G == 4)
            dgemmG4<8>(C, A, B, N);
        if (G == 5)
            dgemmG5<8>(C, A, B, N);
        if (G == 6)
            dgemmG6<8>(C, A, B, N);
        if (G == 7)
            dgemmG7<8>(C, A, B, N);
        if (G == 8)
            dgemmG8<8>(C, A, B, N);
    }
}

// BS=9: 1296 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm9(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<9>(C, A, B, N);
        if (G == 2)
            dgemmG2<9>(C, A, B, N);
        if (G == 3)
            dgemmG3<9>(C, A, B, N);
        if (G == 4)
            dgemmG4<9>(C, A, B, N);
        if (G == 5)
            dgemmG5<9>(C, A, B, N);
        if (G == 6)
            dgemmG6<9>(C, A, B, N);
        if (G == 7)
            dgemmG7<9>(C, A, B, N);
        if (G == 8)
            dgemmG8<9>(C, A, B, N);
    }
}

// BS=10: 1600 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm10(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<10>(C, A, B, N);
        if (G == 2)
            dgemmG2<10>(C, A, B, N);
        if (G == 3)
            dgemmG3<10>(C, A, B, N);
        if (G == 4)
            dgemmG4<10>(C, A, B, N);
        if (G == 5)
            dgemmG5<10>(C, A, B, N);
        if (G == 6)
            dgemmG6<10>(C, A, B, N);
        if (G == 7)
            dgemmG7<10>(C, A, B, N);
        if (G == 8)
            dgemmG8<10>(C, A, B, N);
    }
}

// BS=11: 1936 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm11(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<11>(C, A, B, N);
        if (G == 2)
            dgemmG2<11>(C, A, B, N);
        if (G == 3)
            dgemmG3<11>(C, A, B, N);
        if (G == 4)
            dgemmG4<11>(C, A, B, N);
        if (G == 5)
            dgemmG5<11>(C, A, B, N);
        if (G == 6)
            dgemmG6<11>(C, A, B, N);
        if (G == 7)
            dgemmG7<11>(C, A, B, N);
        if (G == 8)
            dgemmG8<11>(C, A, B, N);
    }
}

// BS=12: 2304 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm12(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<12>(C, A, B, N);
        if (G == 2)
            dgemmG2<12>(C, A, B, N);
        if (G == 3)
            dgemmG3<12>(C, A, B, N);
        if (G == 4)
            dgemmG4<12>(C, A, B, N);
        if (G == 5)
            dgemmG5<12>(C, A, B, N);
        if (G == 6)
            dgemmG6<12>(C, A, B, N);
        if (G == 7)
            dgemmG7<12>(C, A, B, N);
        if (G == 8)
            dgemmG8<12>(C, A, B, N);
    }
}

// BS=13: 2704 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm13(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<13>(C, A, B, N);
        if (G == 2)
            dgemmG2<13>(C, A, B, N);
        if (G == 3)
            dgemmG3<13>(C, A, B, N);
        if (G == 4)
            dgemmG4<13>(C, A, B, N);
        if (G == 5)
            dgemmG5<13>(C, A, B, N);
        if (G == 6)
            dgemmG6<13>(C, A, B, N);
        if (G == 7)
            dgemmG7<13>(C, A, B, N);
        if (G == 8)
            dgemmG8<13>(C, A, B, N);
    }
}

// BS=14: 3136 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm14(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<14>(C, A, B, N);
        if (G == 2)
            dgemmG2<14>(C, A, B, N);
        if (G == 3)
            dgemmG3<14>(C, A, B, N);
        if (G == 4)
            dgemmG4<14>(C, A, B, N);
        if (G == 5)
            dgemmG5<14>(C, A, B, N);
        if (G == 6)
            dgemmG6<14>(C, A, B, N);
        if (G == 7)
            dgemmG7<14>(C, A, B, N);
        if (G == 8)
            dgemmG8<14>(C, A, B, N);
    }
}

// BS=15: 3600 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm15(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<15>(C, A, B, N);
        if (G == 2)
            dgemmG2<15>(C, A, B, N);
        if (G == 3)
            dgemmG3<15>(C, A, B, N);
        if (G == 4)
            dgemmG4<15>(C, A, B, N);
        if (G == 5)
            dgemmG5<15>(C, A, B, N);
        if (G == 6)
            dgemmG6<15>(C, A, B, N);
        if (G == 7)
            dgemmG7<15>(C, A, B, N);
        if (G == 8)
            dgemmG8<15>(C, A, B, N);
    }
}

// BS=16: 4096 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm16(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<16>(C, A, B, N);
        if (G == 2)
            dgemmG2<16>(C, A, B, N);
        if (G == 3)
            dgemmG3<16>(C, A, B, N);
        if (G == 4)
            dgemmG4<16>(C, A, B, N);
        if (G == 5)
            dgemmG5<16>(C, A, B, N);
        if (G == 6)
            dgemmG6<16>(C, A, B, N);
        if (G == 7)
            dgemmG7<16>(C, A, B, N);
        if (G == 8)
            dgemmG8<16>(C, A, B, N);
    }
}

// BS=17: 4624 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm17(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<17>(C, A, B, N);
        if (G == 2)
            dgemmG2<17>(C, A, B, N);
        if (G == 3)
            dgemmG3<17>(C, A, B, N);
        if (G == 4)
            dgemmG4<17>(C, A, B, N);
        if (G == 5)
            dgemmG5<17>(C, A, B, N);
        if (G == 6)
            dgemmG6<17>(C, A, B, N);
        if (G == 7)
            dgemmG7<17>(C, A, B, N);
        if (G == 8)
            dgemmG8<17>(C, A, B, N);
    }
}

// BS=18: 5184 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm18(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<18>(C, A, B, N);
        if (G == 2)
            dgemmG2<18>(C, A, B, N);
        if (G == 3)
            dgemmG3<18>(C, A, B, N);
        if (G == 4)
            dgemmG4<18>(C, A, B, N);
        if (G == 5)
            dgemmG5<18>(C, A, B, N);
        if (G == 6)
            dgemmG6<18>(C, A, B, N);
        if (G == 7)
            dgemmG7<18>(C, A, B, N);
        if (G == 8)
            dgemmG8<18>(C, A, B, N);
    }
}

// BS=19: 5776 B shared memory per product; max G on a 48 KB/block part: 8
__global__ void dgemm19(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<19>(C, A, B, N);
        if (G == 2)
            dgemmG2<19>(C, A, B, N);
        if (G == 3)
            dgemmG3<19>(C, A, B, N);
        if (G == 4)
            dgemmG4<19>(C, A, B, N);
        if (G == 5)
            dgemmG5<19>(C, A, B, N);
        if (G == 6)
            dgemmG6<19>(C, A, B, N);
        if (G == 7)
            dgemmG7<19>(C, A, B, N);
        if (G == 8)
            dgemmG8<19>(C, A, B, N);
    }
}

// BS=20: 6400 B shared memory per product; max G on a 48 KB/block part: 7
__global__ void dgemm20(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<20>(C, A, B, N);
        if (G == 2)
            dgemmG2<20>(C, A, B, N);
        if (G == 3)
            dgemmG3<20>(C, A, B, N);
        if (G == 4)
            dgemmG4<20>(C, A, B, N);
        if (G == 5)
            dgemmG5<20>(C, A, B, N);
        if (G == 6)
            dgemmG6<20>(C, A, B, N);
        if (G == 7)
            dgemmG7<20>(C, A, B, N);
        if (G == 8)
            dgemmG8<20>(C, A, B, N);
    }
}

// BS=21: 7056 B shared memory per product; max G on a 48 KB/block part: 6
__global__ void dgemm21(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<21>(C, A, B, N);
        if (G == 2)
            dgemmG2<21>(C, A, B, N);
        if (G == 3)
            dgemmG3<21>(C, A, B, N);
        if (G == 4)
            dgemmG4<21>(C, A, B, N);
        if (G == 5)
            dgemmG5<21>(C, A, B, N);
        if (G == 6)
            dgemmG6<21>(C, A, B, N);
        if (G == 7)
            dgemmG7<21>(C, A, B, N);
        if (G == 8)
            dgemmG8<21>(C, A, B, N);
    }
}

// BS=22: 7744 B shared memory per product; max G on a 48 KB/block part: 6
__global__ void dgemm22(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<22>(C, A, B, N);
        if (G == 2)
            dgemmG2<22>(C, A, B, N);
        if (G == 3)
            dgemmG3<22>(C, A, B, N);
        if (G == 4)
            dgemmG4<22>(C, A, B, N);
        if (G == 5)
            dgemmG5<22>(C, A, B, N);
        if (G == 6)
            dgemmG6<22>(C, A, B, N);
        if (G == 7)
            dgemmG7<22>(C, A, B, N);
        if (G == 8)
            dgemmG8<22>(C, A, B, N);
    }
}

// BS=23: 8464 B shared memory per product; max G on a 48 KB/block part: 5
__global__ void dgemm23(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<23>(C, A, B, N);
        if (G == 2)
            dgemmG2<23>(C, A, B, N);
        if (G == 3)
            dgemmG3<23>(C, A, B, N);
        if (G == 4)
            dgemmG4<23>(C, A, B, N);
        if (G == 5)
            dgemmG5<23>(C, A, B, N);
        if (G == 6)
            dgemmG6<23>(C, A, B, N);
        if (G == 7)
            dgemmG7<23>(C, A, B, N);
        if (G == 8)
            dgemmG8<23>(C, A, B, N);
    }
}

// BS=24: 9216 B shared memory per product; max G on a 48 KB/block part: 5
__global__ void dgemm24(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<24>(C, A, B, N);
        if (G == 2)
            dgemmG2<24>(C, A, B, N);
        if (G == 3)
            dgemmG3<24>(C, A, B, N);
        if (G == 4)
            dgemmG4<24>(C, A, B, N);
        if (G == 5)
            dgemmG5<24>(C, A, B, N);
        if (G == 6)
            dgemmG6<24>(C, A, B, N);
        if (G == 7)
            dgemmG7<24>(C, A, B, N);
        if (G == 8)
            dgemmG8<24>(C, A, B, N);
    }
}

// BS=25: 10000 B shared memory per product; max G on a 48 KB/block part: 4
__global__ void dgemm25(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<25>(C, A, B, N);
        if (G == 2)
            dgemmG2<25>(C, A, B, N);
        if (G == 3)
            dgemmG3<25>(C, A, B, N);
        if (G == 4)
            dgemmG4<25>(C, A, B, N);
        if (G == 5)
            dgemmG5<25>(C, A, B, N);
        if (G == 6)
            dgemmG6<25>(C, A, B, N);
        if (G == 7)
            dgemmG7<25>(C, A, B, N);
        if (G == 8)
            dgemmG8<25>(C, A, B, N);
    }
}

// BS=26: 10816 B shared memory per product; max G on a 48 KB/block part: 4
__global__ void dgemm26(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<26>(C, A, B, N);
        if (G == 2)
            dgemmG2<26>(C, A, B, N);
        if (G == 3)
            dgemmG3<26>(C, A, B, N);
        if (G == 4)
            dgemmG4<26>(C, A, B, N);
        if (G == 5)
            dgemmG5<26>(C, A, B, N);
        if (G == 6)
            dgemmG6<26>(C, A, B, N);
        if (G == 7)
            dgemmG7<26>(C, A, B, N);
        if (G == 8)
            dgemmG8<26>(C, A, B, N);
    }
}

// BS=27: 11664 B shared memory per product; max G on a 48 KB/block part: 4
__global__ void dgemm27(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<27>(C, A, B, N);
        if (G == 2)
            dgemmG2<27>(C, A, B, N);
        if (G == 3)
            dgemmG3<27>(C, A, B, N);
        if (G == 4)
            dgemmG4<27>(C, A, B, N);
        if (G == 5)
            dgemmG5<27>(C, A, B, N);
        if (G == 6)
            dgemmG6<27>(C, A, B, N);
        if (G == 7)
            dgemmG7<27>(C, A, B, N);
        if (G == 8)
            dgemmG8<27>(C, A, B, N);
    }
}

// BS=28: 12544 B shared memory per product; max G on a 48 KB/block part: 3
__global__ void dgemm28(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<28>(C, A, B, N);
        if (G == 2)
            dgemmG2<28>(C, A, B, N);
        if (G == 3)
            dgemmG3<28>(C, A, B, N);
        if (G == 4)
            dgemmG4<28>(C, A, B, N);
        if (G == 5)
            dgemmG5<28>(C, A, B, N);
        if (G == 6)
            dgemmG6<28>(C, A, B, N);
        if (G == 7)
            dgemmG7<28>(C, A, B, N);
        if (G == 8)
            dgemmG8<28>(C, A, B, N);
    }
}

// BS=29: 13456 B shared memory per product; max G on a 48 KB/block part: 3
__global__ void dgemm29(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<29>(C, A, B, N);
        if (G == 2)
            dgemmG2<29>(C, A, B, N);
        if (G == 3)
            dgemmG3<29>(C, A, B, N);
        if (G == 4)
            dgemmG4<29>(C, A, B, N);
        if (G == 5)
            dgemmG5<29>(C, A, B, N);
        if (G == 6)
            dgemmG6<29>(C, A, B, N);
        if (G == 7)
            dgemmG7<29>(C, A, B, N);
        if (G == 8)
            dgemmG8<29>(C, A, B, N);
    }
}

// BS=30: 14400 B shared memory per product; max G on a 48 KB/block part: 3
__global__ void dgemm30(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<30>(C, A, B, N);
        if (G == 2)
            dgemmG2<30>(C, A, B, N);
        if (G == 3)
            dgemmG3<30>(C, A, B, N);
        if (G == 4)
            dgemmG4<30>(C, A, B, N);
        if (G == 5)
            dgemmG5<30>(C, A, B, N);
        if (G == 6)
            dgemmG6<30>(C, A, B, N);
        if (G == 7)
            dgemmG7<30>(C, A, B, N);
        if (G == 8)
            dgemmG8<30>(C, A, B, N);
    }
}

// BS=31: 15376 B shared memory per product; max G on a 48 KB/block part: 3
__global__ void dgemm31(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<31>(C, A, B, N);
        if (G == 2)
            dgemmG2<31>(C, A, B, N);
        if (G == 3)
            dgemmG3<31>(C, A, B, N);
        if (G == 4)
            dgemmG4<31>(C, A, B, N);
        if (G == 5)
            dgemmG5<31>(C, A, B, N);
        if (G == 6)
            dgemmG6<31>(C, A, B, N);
        if (G == 7)
            dgemmG7<31>(C, A, B, N);
        if (G == 8)
            dgemmG8<31>(C, A, B, N);
    }
}

// BS=32: 16384 B shared memory per product; max G on a 48 KB/block part: 3
__global__ void dgemm32(double *C, double *A, double *B,
        const int N, const int G, const int R) {
    for (int run = 0; run < R; run++) {
        if (G == 1)
            dgemmG1<32>(C, A, B, N);
        if (G == 2)
            dgemmG2<32>(C, A, B, N);
        if (G == 3)
            dgemmG3<32>(C, A, B, N);
        if (G == 4)
            dgemmG4<32>(C, A, B, N);
        if (G == 5)
            dgemmG5<32>(C, A, B, N);
        if (G == 6)
            dgemmG6<32>(C, A, B, N);
        if (G == 7)
            dgemmG7<32>(C, A, B, N);
        if (G == 8)
            dgemmG8<32>(C, A, B, N);
    }
}

