"""Benches F3/F5: regenerate the paper's illustration figures.

Fig. 3 (the DGEMM decomposition) and Fig. 5 (the CUDA instrument) are
reproduced as verifiable artifacts: a machine-checked decomposition
diagram and the full regenerated CUDA source.
"""

from pathlib import Path

from repro.experiments import fig3_decomposition, fig5_source


def test_fig3_decomposition(benchmark, emit):
    result = benchmark(fig3_decomposition.run)
    emit("fig3_decomposition", result.render())
    assert result.violations == 0


def test_fig5_source(benchmark, emit):
    result = benchmark(fig5_source.run)
    emit("fig5_source", result.render())
    # Also persist the full instrument as a build artifact.
    out = Path(__file__).parent / "output" / "fig5_dgemm_instrument.cu"
    out.write_text(result.source + "\n")
    assert result.dispatch_kernels == 32
