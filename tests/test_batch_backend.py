"""Parity and wiring tests for the vectorized batch backend.

The contract under test (``repro.simgpu.batch``): the NumPy batch
evaluation agrees with the scalar reference path
(``GPUDevice.run_matmul``) to ≤ 1e-9 relative error per lane — over
the *full* K40c and P100 configuration spaces, over randomized config
spaces (property-based, seeded), and through the
``SweepEngine(backend="vectorized")`` execution path.  The scalar path
stays the reference: its cache keys and golden snapshots must be
untouched by the new backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.matmul_gpu import MatmulConfig, MatmulGPUApp
from repro.machines.specs import K40C, P100
from repro.simgpu.batch import (
    BatchRunResult,
    batch_run_matmul,
    evaluate_configs_batch,
)
from repro.simgpu.calibration import calibration_for
from repro.simgpu.device import GPUDevice
from repro.simgpu.kernel import max_group_size
from repro.sweep import SweepEngine, SweepRequest, sweep_key
from repro.sweep.engine import chunk_size_for

PARITY_RTOL = 1e-9


def scalar_reference(spec, cal, n, configs):
    device = GPUDevice(spec, cal)
    return [device.run_matmul(n, c.bs, c.g, c.r) for c in configs]


def assert_batch_matches(spec, cal, n_values, configs, out: BatchRunResult):
    device = GPUDevice(spec, cal)
    assert len(out) == len(configs)
    for i, c in enumerate(configs):
        n = n_values[i] if not isinstance(n_values, int) else n_values
        ref = device.run_matmul(n, c.bs, c.g, c.r)
        assert out.time_s[i] == pytest.approx(ref.time_s, rel=PARITY_RTOL)
        assert out.dynamic_energy_j[i] == pytest.approx(
            ref.dynamic_energy_j, rel=PARITY_RTOL
        )
        assert out.dynamic_power_w[i] == pytest.approx(
            ref.dynamic_power_w, rel=PARITY_RTOL
        )
        assert out.clock_hz[i] == pytest.approx(ref.clock_hz, rel=PARITY_RTOL)
        assert bool(out.throttled[i]) == ref.throttled


class TestFullSpaceParity:
    """≤ 1e-9 agreement over the full default configuration spaces."""

    @pytest.mark.parametrize(
        "spec,n",
        [(P100, 10240), (P100, 18432), (K40C, 10240), (K40C, 16384)],
    )
    def test_full_sweep_parity(self, spec, n):
        app = MatmulGPUApp(spec)
        configs = app.sweep_configs()
        ref = scalar_reference(spec, app.device.cal, n, configs)
        got = evaluate_configs_batch(spec, app.device.cal, n, configs)
        assert len(got) == len(configs) == 146
        for (t, e), r in zip(got, ref):
            assert t == pytest.approx(r.time_s, rel=PARITY_RTOL)
            assert e == pytest.approx(r.dynamic_energy_j, rel=PARITY_RTOL)

    def test_full_space_includes_tiny_tiles(self):
        """BS down to 1 (outside the default sweep floor) still agrees."""
        app = MatmulGPUApp(P100)
        configs = app.sweep_configs(min_bs=1)
        assert any(c.bs < 4 for c in configs)
        got = evaluate_configs_batch(P100, app.device.cal, 1024, configs)
        ref = scalar_reference(P100, app.device.cal, 1024, configs)
        for (t, e), r in zip(got, ref):
            assert t == pytest.approx(r.time_s, rel=PARITY_RTOL)
            assert e == pytest.approx(r.dynamic_energy_j, rel=PARITY_RTOL)


@pytest.mark.parametrize("seed", range(10))
class TestRandomizedParity:
    """Property-based parity over randomized config spaces.

    Each seed draws a batch of valid ``(N, BS, G, R)`` tuples — mixed
    matrix sizes in one batch (exercising the per-unique-N paths),
    tile sizes over the whole admissible 1..32 range, group sizes up
    to the per-BS shared-memory bound, arbitrary repeat counts — and
    requires every per-lane output field to match the scalar path.
    """

    def draw(self, spec, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 50))
        n = rng.integers(64, 4096, m)
        bs = rng.integers(1, 33, m)
        g = np.array(
            [rng.integers(1, max_group_size(spec, int(b)) + 1) for b in bs]
        )
        r = rng.integers(1, 40, m)
        return n, bs, g, r

    @pytest.mark.parametrize("spec", [P100, K40C], ids=["p100", "k40c"])
    def test_random_batch_parity(self, spec, seed):
        n, bs, g, r = self.draw(spec, seed)
        cal = calibration_for(spec)
        out = batch_run_matmul(spec, cal, n, bs, g, r)
        configs = [
            MatmulConfig(bs=int(b), g=int(gg), r=int(rr))
            for b, gg, rr in zip(bs, g, r)
        ]
        assert_batch_matches(spec, cal, [int(v) for v in n], configs, out)


class TestBatchInputHandling:
    def test_scalar_inputs_become_one_lane(self):
        out = batch_run_matmul(P100, None, 1024, 32, 1, 24)
        ref = GPUDevice(P100).run_matmul(1024, 32, 1, 24)
        assert len(out) == 1
        assert out.time_s[0] == pytest.approx(ref.time_s, rel=PARITY_RTOL)

    def test_broadcasting(self):
        bs = np.array([8, 16, 32])
        out = batch_run_matmul(P100, None, 1024, bs, 1, 24)
        assert len(out) == 3

    def test_default_calibration_matches_explicit(self):
        a = batch_run_matmul(P100, None, 1024, 32, 1, 24)
        b = batch_run_matmul(P100, calibration_for(P100), 1024, 32, 1, 24)
        assert a.time_s[0] == b.time_s[0]

    def test_empty_config_list(self):
        assert evaluate_configs_batch(P100, None, 1024, []) == []

    @pytest.mark.parametrize(
        "n,bs,g,r,match",
        [
            (0, 32, 1, 1, "N must be positive"),
            (1024, 0, 1, 1, "BS=0 invalid"),
            (1024, 33, 1, 1, "BS=33 invalid"),
            (1024, 32, 8, 1, "G=8 not permissible"),
            (1024, 32, 1, 0, "R must be at least 1"),
        ],
    )
    def test_invalid_lanes_rejected(self, n, bs, g, r, match):
        """Every config the scalar path rejects is rejected, even when
        valid lanes surround it in the batch."""
        with pytest.raises(ValueError, match=match):
            batch_run_matmul(
                P100, None, [1024, n], [32, bs], [1, g], [24, r]
            )


class TestEngineBackend:
    def test_unknown_backend_is_clean_error(self):
        with pytest.raises(ValueError, match="unknown backend 'cuda'"):
            SweepEngine(backend="cuda")

    def test_vectorized_sweep_matches_scalar_engine(self):
        scalar = SweepEngine().sweep("p100", 10240)
        vec = SweepEngine(backend="vectorized").sweep("p100", 10240)
        assert len(scalar) == len(vec)
        for s, v in zip(scalar, vec):
            assert v.config == s.config
            assert v.time_s == pytest.approx(s.time_s, rel=PARITY_RTOL)
            assert v.energy_j == pytest.approx(s.energy_j, rel=PARITY_RTOL)

    def test_vectorized_engine_stats(self):
        engine = SweepEngine(backend="vectorized")
        points = engine.sweep("k40c", 8192)
        assert engine.stats.requested == len(points)
        assert engine.stats.computed == len(points)
        assert engine.stats.cache_hits == 0

    def test_vectorized_cache_roundtrip_and_key_isolation(self, tmp_path):
        """Vectorized results are cached and reused — under keys that
        can never collide with the scalar reference cache."""
        req = SweepRequest(device="p100", n=2048)
        configs = req.configs()[:10]

        vec = SweepEngine(backend="vectorized", cache_dir=tmp_path)
        first = vec.evaluate_configs(req, configs)
        warm = SweepEngine(backend="vectorized", cache_dir=tmp_path)
        again = warm.evaluate_configs(req, configs)
        assert warm.stats.cache_hits == len(configs)
        assert [(p.time_s, p.energy_j) for p in again] == [
            (p.time_s, p.energy_j) for p in first
        ]

        # The scalar engine sees none of the vectorized entries.
        scalar = SweepEngine(cache_dir=tmp_path)
        scalar.evaluate_configs(req, configs)
        assert scalar.stats.cache_hits == 0

    def test_scalar_keys_unchanged_by_backend_parameter(self):
        cal = calibration_for(P100)
        cfg = {"bs": 32, "g": 1, "r": 24}
        assert sweep_key(P100, cal, 10240, cfg) == sweep_key(
            P100, cal, 10240, cfg, backend="scalar"
        )
        assert sweep_key(P100, cal, 10240, cfg, backend="vectorized") != (
            sweep_key(P100, cal, 10240, cfg)
        )


class TestAdaptiveChunking:
    def test_small_sweeps_do_not_serialize_behind_one_chunk(self):
        # 20 points over 4 workers used to fit in two 16-point chunks;
        # now every worker gets work.
        size = chunk_size_for(20, 4)
        assert size < 16
        assert -(-20 // size) >= 4  # at least one chunk per worker

    def test_bounds(self):
        assert chunk_size_for(1, 8) == 4  # floor
        assert chunk_size_for(10**6, 1) == 256  # cap
        assert chunk_size_for(0, 4) == 4

    def test_scales_with_sweep_size(self):
        assert chunk_size_for(10_000, 4) > chunk_size_for(100, 4)

    def test_parallel_path_uses_adaptive_chunks(self):
        """jobs>1 with a sweep bigger than one chunk still matches."""
        req = SweepRequest(device="k40c", n=4096)
        configs = req.configs()[:24]
        serial = SweepEngine().evaluate_configs(req, configs)
        parallel = SweepEngine(jobs=2).evaluate_configs(req, configs)
        assert [(p.time_s, p.energy_j) for p in serial] == [
            (p.time_s, p.energy_j) for p in parallel
        ]
