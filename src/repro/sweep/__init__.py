"""Parallel sweep engine with content-addressed result caching.

The paper's results (Figs. 2, 7, 8 and the headline statistics) all
derive from exhaustive sweeps of the ``(BS, G, R)`` configuration
space per matrix size and device.  This package provides the reusable
substrate every sweep-driven experiment runs on:

* :class:`~repro.sweep.engine.SweepEngine` — fans the
  ``(device, N, config)`` cross-product out over a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs > 1``) with a
  deterministic serial path for ``jobs=1``.  The parallel path is
  bit-identical to the serial path (enforced by
  ``tests/test_sweep_parity.py``).
* :class:`~repro.sweep.cache.SweepCache` — a content-addressed on-disk
  JSON cache keyed by a stable hash of the device specification,
  calibration constants, matrix size, configuration and model version
  (:func:`~repro.sweep.keys.sweep_key`), so repeated experiment and
  benchmark runs skip already-computed points and interrupted sweeps
  resume where they stopped.
* :class:`~repro.sweep.plan.SweepRequest` — a declarative description
  of one ``(device, N)`` sweep, resolvable to its configuration list.
* a ``backend="vectorized"`` execution path that evaluates all missing
  points of a sweep in one NumPy batch (:mod:`repro.simgpu.batch`),
  and :func:`~repro.sweep.bench.run_benchmark` which times the
  backends against each other (``repro bench``).
"""

from repro.sweep.bench import BenchmarkCase, run_benchmark
from repro.sweep.cache import CacheRecord, SweepCache
from repro.sweep.engine import BACKENDS, SweepEngine, SweepStats, chunk_size_for
from repro.sweep.keys import MODEL_VERSION, canonical_json, sweep_key
from repro.sweep.plan import SweepRequest, resolve_device

__all__ = [
    "BACKENDS",
    "BenchmarkCase",
    "CacheRecord",
    "MODEL_VERSION",
    "SweepCache",
    "SweepEngine",
    "SweepRequest",
    "SweepStats",
    "canonical_json",
    "chunk_size_for",
    "resolve_device",
    "run_benchmark",
    "sweep_key",
]
