"""``repro trace``: render a telemetry JSONL file as a span tree.

Reads the event stream a ``--telemetry jsonl:PATH`` run wrote and
prints (a) the provenance manifest, (b) the span tree with wall time,
*self* time (wall minus the wall of direct children — where time was
actually spent, not just passed through) and attributes, and (c) the
top metrics.  Pure stdlib; tolerant of streams from newer minor
versions (unknown events are skipped).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = ["load_events", "render_trace", "main"]


def load_events(path: str | Path) -> list[dict[str, Any]]:
    """Parse one JSON object per line; raises ValueError on garbage."""
    events = []
    text = Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{lineno}: not a JSON event line ({exc})"
            ) from None
        if not isinstance(event, dict) or "event" not in event:
            raise ValueError(f"{path}:{lineno}: not a telemetry event")
        events.append(event)
    if not events:
        raise ValueError(f"{path}: empty telemetry stream")
    return events


def _fmt_ms(ns: int) -> str:
    return f"{ns / 1e6:9.2f}"


def _fmt_attrs(attrs: dict[str, Any]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return f"  [{inner}]"


def render_trace(events: list[dict[str, Any]]) -> str:
    """Human-readable report of one telemetry event stream."""
    spans = [e for e in events if e.get("event") == "span"]
    metrics = next(
        (e for e in events if e.get("event") == "metrics"), None
    )
    provenance = next(
        (e for e in events if e.get("event") == "provenance"), None
    )

    lines: list[str] = []
    if provenance is not None:
        lines.append("provenance:")
        for key in (
            "command",
            "git_sha",
            "model_version",
            "backend",
            "inputs_digest",
            "requests",
        ):
            if key in provenance:
                lines.append(f"  {key:<14} {provenance[key]}")
        for device, digest in sorted(
            (provenance.get("calibrations") or {}).items()
        ):
            lines.append(f"  calibration    {device}: {digest[:16]}")
        lines.append("")

    if spans:
        children: dict[int | None, list[dict[str, Any]]] = {}
        for s in sorted(spans, key=lambda s: s["id"]):
            children.setdefault(s.get("parent"), []).append(s)
        total_ns = sum(s["duration_ns"] for s in children.get(None, []))
        lines.append(
            f"span tree ({len(spans)} spans, "
            f"{total_ns / 1e6:.2f} ms total):"
        )
        lines.append(
            f"  {'wall ms':>9} {'self ms':>9}  span"
        )

        def walk(parent: int | None, depth: int) -> None:
            for s in children.get(parent, []):
                child_ns = sum(
                    c["duration_ns"] for c in children.get(s["id"], [])
                )
                self_ns = max(0, s["duration_ns"] - child_ns)
                lines.append(
                    f"  {_fmt_ms(s['duration_ns'])} {_fmt_ms(self_ns)}  "
                    f"{'  ' * depth}{s['name']}"
                    f"{_fmt_attrs(s.get('attrs') or {})}"
                )
                walk(s["id"], depth + 1)

        walk(None, 0)
        lines.append("")

    if metrics is not None:
        counters = metrics.get("counters") or {}
        gauges = metrics.get("gauges") or {}
        histograms = metrics.get("histograms") or {}
        if counters or gauges or histograms:
            lines.append("metrics:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<44} {value}")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:<44} {value:.6g}")
        for name, hist in sorted(histograms.items()):
            lines.append(
                f"  {name:<44} n={hist.get('count', 0)} "
                f"mean={hist.get('mean', 0.0):.6g} "
                f"min={hist.get('min', 0.0):.6g} "
                f"max={hist.get('max', 0.0):.6g}"
            )

    return "\n".join(lines).rstrip()


def main(path: str | Path) -> str:
    """Load + render, with CLI-grade errors (``repro trace`` body)."""
    target = Path(path)
    if not target.is_file():
        raise SystemExit(f"repro trace: no such file: {target}")
    try:
        events = load_events(target)
    except ValueError as exc:
        raise SystemExit(f"repro trace: {exc}") from None
    return render_trace(events)
