"""Generator for the paper's CUDA matmul source (Fig. 5).

The paper's instrument is a CUDA file containing, for every tile
dimension ``BS ∈ 1..32``, a ``__global__`` kernel ``dgemm<BS>`` that
dispatches to one of eight ``__device__`` group routines
``dgemmG1..dgemmG8`` — each the matmul product code textually repeated
G times with ``__syncthreads()`` between repetitions.

This module regenerates that source.  The text is what the paper's
Fig. 5 excerpts; generating it (a) documents the instrument precisely,
(b) lets the tests machine-check the structural facts the simulator
relies on (shared-memory bytes per product, sync counts, dispatch
structure), and (c) gives anyone with real hardware the exact code to
run the study natively — the output is valid CUDA C++.
"""

from __future__ import annotations

from repro.simgpu.kernel import shared_mem_per_block

__all__ = [
    "product_code",
    "group_routine",
    "dispatch_kernel",
    "full_source",
]

_PRODUCT_TEMPLATE = """\
    {{
        int bx = blockIdx.x; int by = blockIdx.y;
        int tx = threadIdx.x; int ty = threadIdx.y;
        int aBegin = N * BS * by; int aEnd = aBegin + N - 1;
        int aStep = BS; int bBegin = BS * bx;
        int bStep = BS * N; double Csub = 0;
        for (int a = aBegin, b = bBegin; a <= aEnd;
             a += aStep, b += bStep) {{
            __shared__ double As[BS][BS], Bs[BS][BS];
            As[ty][tx] = A[a + N * ty + tx];
            Bs[ty][tx] = B[b + N * ty + tx];
            __syncthreads();
#pragma unroll
            for (int k = 0; k < BS; ++k)
                Csub += As[ty][k] * Bs[k][tx];
            __syncthreads();
        }}
        C[N * BS * by + BS * bx + N * ty + tx] += Csub;
    }}"""


def product_code() -> str:
    """One matmul product (Fig. 5 lines 1-21), as a braced block.

    ``BS`` is the enclosing template parameter; the block computes one
    ``Csub`` element per thread through shared-memory tiles.
    """
    return _PRODUCT_TEMPLATE


def group_routine(g: int) -> str:
    """``dgemmG<g>``: the product code repeated g times (lines 22-34).

    Each repetition is separated by a block-level barrier, exactly as
    the paper describes ("device matrix product codes repeated textually
    one after the other").
    """
    if not (1 <= g <= 8):
        raise ValueError("the paper's source defines dgemmG1..dgemmG8")
    body = ("\n    __syncthreads();\n").join(
        product_code() for _ in range(g)
    )
    return (
        f"template <int BS> __device__ void dgemmG{g}(\n"
        f"        double *C, double *A, double *B, int N) {{\n"
        f"{body}\n"
        f"}}"
    )


def dispatch_kernel(bs: int, g_max: int = 8) -> str:
    """``dgemm<bs>``: the __global__ dispatcher (lines 35-64).

    Loops R times and selects the group routine by the runtime G
    argument, instantiating every group template at this BS.
    """
    if not (1 <= bs <= 32):
        raise ValueError("the paper sweeps BS in 1..32")
    if not (1 <= g_max <= 8):
        raise ValueError("g_max must lie in 1..8")
    branches = "\n".join(
        f"        if (G == {g})\n"
        f"            dgemmG{g}<{bs}>(C, A, B, N);"
        for g in range(1, g_max + 1)
    )
    return (
        f"__global__ void dgemm{bs}(double *C, double *A, double *B,\n"
        f"        const int N, const int G, const int R) {{\n"
        f"    for (int run = 0; run < R; run++) {{\n"
        f"{branches}\n"
        f"    }}\n"
        f"}}"
    )


def full_source(bs_values: range | None = None) -> str:
    """The complete instrument: all group routines + all dispatchers.

    By default covers BS 1..32 like the paper's file.  The per-BS
    shared-memory requirement of each instantiation is emitted as a
    comment so the (BS, G) validity constraint is visible in the
    source.
    """
    if bs_values is None:
        bs_values = range(1, 33)
    parts = [
        "// Blocked matrix multiplication instrument for energy-",
        "// proportionality analysis (regenerated Fig. 5 of Manumachu &",
        "// Lastovetsky, IPPS 2022).  One dgemmG<g> per group size; one",
        "// dgemm<BS> dispatcher per tile dimension.",
        "",
    ]
    for g in range(1, 9):
        parts.append(group_routine(g))
        parts.append("")
    for bs in bs_values:
        smem = shared_mem_per_block(bs, 1)
        parts.append(
            f"// BS={bs}: {smem} B shared memory per product; "
            f"max G on a 48 KB/block part: "
            f"{min(8, 49152 // smem) if smem <= 49152 else 0}"
        )
        parts.append(dispatch_kernel(bs))
        parts.append("")
    return "\n".join(parts)
