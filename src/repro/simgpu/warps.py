"""Warp-level execution-efficiency model.

Two warp-granularity effects shape the blocked-matmul landscape:

* **Partial warps.**  A block of ``BS²`` threads occupies
  ``ceil(BS²/32)`` warps; when ``BS² mod 32 ≠ 0`` the last warp has
  idle lanes that still consume an issue slot.  The lane efficiency
  ``BS²/(32·ceil(BS²/32))`` is exactly 1 for BS ∈ {4, 8, 12, ..., 32}
  and dips by up to ~40% for small odd BS — one source of the jagged
  energy behaviour in the BS ∈ [21, 32] region.

* **Shared-memory replays.**  The kernel's inner product reads
  ``As[ty][k]`` and ``Bs[k][tx]``.  When BS < 32 a warp spans
  ``ceil(32/BS)`` different ``ty`` rows, so the ``As`` broadcast splits
  into that many transactions (replays); at BS = 32 each warp maps to a
  single row and the access is a clean broadcast.  The replay factor
  multiplies the shared-memory issue cost and is the main reason BS=32
  is the time-optimal tile on both GPUs (paper Section V.C: the K40c's
  single global-Pareto point has BS = 32).
"""

from __future__ import annotations

import math

__all__ = ["lane_efficiency", "warps_per_block", "smem_replay_factor"]


def lane_efficiency(threads_per_block: int, warp_size: int = 32) -> float:
    """Fraction of issued lanes doing useful work, ∈ (0, 1]."""
    if threads_per_block < 1:
        raise ValueError("block must have at least one thread")
    if warp_size < 1:
        raise ValueError("warp size must be positive")
    warps = math.ceil(threads_per_block / warp_size)
    return threads_per_block / (warps * warp_size)


def warps_per_block(threads_per_block: int, warp_size: int = 32) -> int:
    """Number of warps a block occupies."""
    if threads_per_block < 1:
        raise ValueError("block must have at least one thread")
    return math.ceil(threads_per_block / warp_size)


def smem_replay_factor(bs: int, warp_size: int = 32) -> float:
    """Average shared-memory transaction replay factor for tile dim BS.

    A warp covers ``ceil(warp_size / BS)`` distinct ``ty`` rows (for
    BS < warp_size), each turning the ``As[ty][k]`` broadcast into a
    separate transaction.  The ``Bs[k][tx]`` read is conflict-free for
    power-of-two-friendly BS and mildly conflicted otherwise; we charge
    the row-splitting cost, which dominates.  BS ≥ warp_size is a clean
    single-row broadcast: factor 1.
    """
    if bs < 1:
        raise ValueError("BS must be at least 1")
    if bs >= warp_size:
        return 1.0
    rows_per_warp = math.ceil(warp_size / bs)
    # Replays apply to one of the two shared loads per FMA; average the
    # factor over both loads: (rows_per_warp + 1) / 2.
    return (rows_per_warp + 1.0) / 2.0
