"""The paper's threadgroup-parallel CPU DGEMM application (Section III.A).

The application multiplies two dense ``N×N`` doubles using ``p``
threadgroups of ``t`` threads each (Fig. 3): A and C are partitioned
horizontally across groups, B is shared, each thread is bound to a
separate logical CPU, and there is no inter-thread communication —
the weak-EP application constraints.

:class:`DGEMMCPUApp` enumerates the Fig. 4 configuration dimensions —
matrix partitioning type, number of threadgroups, threads per group,
and BLAS library — and evaluates them on the CPU simulator, yielding
the (utilization, dynamic power, performance) triples Fig. 4 plots and
the (time, energy) points the weak-EP analysis consumes.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.pareto import ParetoPoint
from repro.machines.specs import CPUSpec
from repro.simcpu.calibration import CPUCalibration
from repro.simcpu.processor import (
    CPURunResult,
    DGEMMConfig,
    MulticoreCPU,
    PARTITIONS,
)

__all__ = ["DGEMMCPUApp"]


def _factor_pairs(total: int) -> list[tuple[int, int]]:
    """All (groups, threads_per_group) with groups·threads == total."""
    pairs = []
    d = 1
    while d * d <= total:
        if total % d == 0:
            pairs.append((d, total // d))
            if d != total // d:
                pairs.append((total // d, d))
        d += 1
    return sorted(pairs)


class DGEMMCPUApp:
    """The (partition, p, t) DGEMM application on the simulated CPU.

    Parameters
    ----------
    spec:
        CPU to run on (``repro.machines.HASWELL``).
    thread_counts:
        Total thread counts to sweep.  Defaults to the divisors-rich
        ladder the paper's plots cover (up to all 48 logical CPUs).
    libraries:
        BLAS flavors to include.
    """

    def __init__(
        self,
        spec: CPUSpec,
        cal: CPUCalibration | None = None,
        *,
        thread_counts: tuple[int, ...] = (1, 2, 4, 6, 8, 12, 16, 24, 32, 48),
        libraries: tuple[str, ...] = ("mkl", "openblas"),
    ) -> None:
        self.spec = spec
        self.cpu = MulticoreCPU(spec, cal)
        if not thread_counts:
            raise ValueError("need at least one thread count")
        if any(tc < 1 or tc > spec.logical_cpus for tc in thread_counts):
            raise ValueError("thread counts must fit the machine")
        self.thread_counts = thread_counts
        self.libraries = libraries

    def valid_configs(self, library: str | None = None) -> Iterator[DGEMMConfig]:
        """All configurations over the sweep dimensions."""
        libs = self.libraries if library is None else (library,)
        for lib in libs:
            for partition in PARTITIONS:
                for total in self.thread_counts:
                    for p, t in _factor_pairs(total):
                        yield DGEMMConfig(partition, p, t, lib)

    def run(
        self,
        n: int,
        config: DGEMMConfig,
        *,
        rng: np.random.Generator | None = None,
    ) -> CPURunResult:
        return self.cpu.run_dgemm(n, config, rng=rng)

    def sweep(
        self,
        n: int,
        library: str | None = None,
        *,
        rng: np.random.Generator | None = None,
    ) -> list[CPURunResult]:
        """Evaluate every configuration for matrix size N."""
        return [self.run(n, cfg, rng=rng) for cfg in self.valid_configs(library)]

    def sweep_points(
        self, n: int, library: str | None = None
    ) -> list[ParetoPoint]:
        """(time, dynamic energy) points for the weak-EP analysis."""
        return [
            ParetoPoint(
                time_s=r.time_s,
                energy_j=r.dynamic_energy_j,
                config={
                    "partition": r.config.partition,
                    "groups": r.config.groups,
                    "threads_per_group": r.config.threads_per_group,
                    "library": r.config.library,
                },
            )
            for r in self.sweep(n, library)
        ]
