"""Unit and property tests for the Pareto-front machinery."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import (
    ParetoPoint,
    dominates,
    epsilon_pareto_front,
    front_spread,
    hypervolume_2d,
    local_pareto_front,
    nondominated_sort,
    pareto_front,
)


def P(t, e, cfg=None):
    return ParetoPoint(t, e, cfg)


# -- construction -----------------------------------------------------------


class TestParetoPoint:
    def test_objectives_tuple(self):
        assert P(1.0, 2.0).objectives() == (1.0, 2.0)

    @pytest.mark.parametrize("t,e", [(-1.0, 1.0), (1.0, -1.0)])
    def test_rejects_negative(self, t, e):
        with pytest.raises(ValueError, match="non-negative"):
            P(t, e)

    @pytest.mark.parametrize(
        "t,e", [(math.nan, 1.0), (1.0, math.inf), (math.inf, math.inf)]
    )
    def test_rejects_nonfinite(self, t, e):
        with pytest.raises(ValueError, match="finite"):
            P(t, e)

    def test_carries_config(self):
        assert P(1, 1, {"bs": 4}).config == {"bs": 4}


# -- dominance --------------------------------------------------------------


class TestDominates:
    def test_strictly_better_both(self):
        assert dominates(P(1, 1), P(2, 2))

    def test_better_in_one_equal_other(self):
        assert dominates(P(1, 2), P(2, 2))
        assert dominates(P(2, 1), P(2, 2))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(P(1, 1), P(1, 1))

    def test_incomparable(self):
        assert not dominates(P(1, 3), P(3, 1))
        assert not dominates(P(3, 1), P(1, 3))

    def test_antisymmetric(self):
        a, b = P(1, 1), P(2, 2)
        assert dominates(a, b) and not dominates(b, a)

    def test_tolerance_softens_strictness(self):
        # Within tol, a slightly better point is not "strictly better".
        assert not dominates(P(1.0, 1.0), P(1.05, 1.05), tol=0.1)

    def test_tolerance_negative_rejected(self):
        with pytest.raises(ValueError):
            dominates(P(1, 1), P(2, 2), tol=-0.1)


# -- global front -----------------------------------------------------------


class TestParetoFront:
    def test_empty(self):
        assert pareto_front([]) == []

    def test_single(self):
        assert pareto_front([P(1, 1)]) == [P(1, 1)]

    def test_simple_front(self):
        pts = [P(1, 5), P(2, 3), P(3, 4), P(4, 1)]
        front = pareto_front(pts)
        assert [p.objectives() for p in front] == [(1, 5), (2, 3), (4, 1)]

    def test_sorted_by_time(self):
        front = pareto_front([P(4, 1), P(1, 5), P(2, 3)])
        times = [p.time_s for p in front]
        assert times == sorted(times)

    def test_duplicates_collapsed(self):
        front = pareto_front([P(1, 1), P(1, 1), P(1, 1)])
        assert len(front) == 1

    def test_accepts_raw_tuples(self):
        front = pareto_front([(1.0, 5.0), (2.0, 3.0, "cfg")])
        assert len(front) == 2
        assert front[1].config == "cfg"

    def test_equal_time_keeps_lower_energy(self):
        front = pareto_front([P(1, 5), P(1, 3)])
        assert len(front) == 1
        assert front[0].energy_j == 3


finite_points = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=1e6),
        st.floats(min_value=0.01, max_value=1e6),
    ),
    min_size=1,
    max_size=60,
)


class TestParetoFrontProperties:
    @given(finite_points)
    def test_front_members_not_dominated(self, raw):
        pts = [P(t, e) for t, e in raw]
        front = pareto_front(pts)
        for f in front:
            assert not any(dominates(p, f) for p in pts)

    @given(finite_points)
    def test_every_point_weakly_dominated_by_front(self, raw):
        pts = [P(t, e) for t, e in raw]
        front = pareto_front(pts)
        for p in pts:
            assert any(
                f.time_s <= p.time_s and f.energy_j <= p.energy_j for f in front
            )

    @given(finite_points)
    def test_front_is_idempotent(self, raw):
        pts = [P(t, e) for t, e in raw]
        once = pareto_front(pts)
        twice = pareto_front(once)
        assert [p.objectives() for p in once] == [p.objectives() for p in twice]

    @given(finite_points)
    def test_front_strictly_decreasing_energy(self, raw):
        pts = [P(t, e) for t, e in raw]
        front = pareto_front(pts)
        energies = [p.energy_j for p in front]
        assert all(a > b for a, b in zip(energies, energies[1:]))

    @given(finite_points, finite_points)
    def test_front_of_union_subset_of_union_of_fronts(self, raw_a, raw_b):
        a = [P(t, e) for t, e in raw_a]
        b = [P(t, e) for t, e in raw_b]
        combined = pareto_front(a + b)
        union_objs = {
            p.objectives() for p in pareto_front(a) + pareto_front(b)
        }
        assert all(p.objectives() in union_objs for p in combined)


# -- local fronts -----------------------------------------------------------


class TestLocalFront:
    def test_region_restriction(self):
        pts = [P(1, 5, "a"), P(2, 3, "b"), P(4, 1, "a")]
        local = local_pareto_front(pts, lambda p: p.config == "a")
        assert [p.config for p in local] == ["a", "a"]

    def test_local_front_point_can_be_globally_dominated(self):
        pts = [P(1, 1, "fast"), P(2, 3, "slow"), P(3, 2, "slow")]
        local = local_pareto_front(pts, lambda p: p.config == "slow")
        assert len(local) == 2  # both dominated globally, both locally optimal

    def test_empty_region(self):
        assert local_pareto_front([P(1, 1, "a")], lambda p: False) == []


# -- epsilon front ----------------------------------------------------------


class TestEpsilonFront:
    def test_zero_epsilon_is_exact_front(self):
        pts = [P(1, 5), P(2, 3), P(4, 1)]
        assert epsilon_pareto_front(pts, 0.0) == pareto_front(pts)

    def test_large_epsilon_thins(self):
        pts = [P(1.0, 3.0), P(1.05, 2.9), P(1.1, 2.85)]
        thin = epsilon_pareto_front(pts, 0.5)
        assert len(thin) == 1

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            epsilon_pareto_front([P(1, 1)], -0.1)

    @given(finite_points, st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=50)
    def test_coverage_invariant(self, raw, eps):
        pts = [P(t, e) for t, e in raw]
        exact = pareto_front(pts)
        approx = epsilon_pareto_front(pts, eps)
        scale = 1.0 + eps
        for p in exact:
            assert any(
                s.time_s <= scale * p.time_s + 1e-9
                and s.energy_j <= scale * p.energy_j + 1e-9
                for s in approx
            )


# -- non-dominated sorting --------------------------------------------------


class TestNondominatedSort:
    def test_layers_partition_points(self):
        pts = [P(1, 5), P(2, 3), P(4, 1), P(2, 6), P(5, 5)]
        layers = nondominated_sort(pts)
        assert sum(len(l) for l in layers) == len(pts)

    def test_rank0_is_front(self):
        pts = [P(1, 5), P(2, 3), P(4, 1), P(2, 6), P(5, 5)]
        layers = nondominated_sort(pts)
        assert [p.objectives() for p in layers[0]] == [
            p.objectives() for p in pareto_front(pts)
        ]

    def test_later_layers_dominated_by_earlier(self):
        pts = [P(1, 5), P(2, 3), P(4, 1), P(2, 6), P(5, 5), P(6, 6)]
        layers = nondominated_sort(pts)
        for k in range(1, len(layers)):
            for p in layers[k]:
                assert any(
                    dominates(q, p) or q.objectives() == p.objectives()
                    for q in layers[k - 1]
                )

    def test_empty(self):
        assert nondominated_sort([]) == []


# -- hypervolume ------------------------------------------------------------


class TestHypervolume:
    def test_single_point_rectangle(self):
        assert hypervolume_2d([P(1, 1)], (3, 3)) == pytest.approx(4.0)

    def test_two_point_staircase(self):
        hv = hypervolume_2d([P(1, 2), P(2, 1)], (3, 3))
        # (3-1)*(3-2) + (3-2)*(2-1) = 2 + 1 = 3
        assert hv == pytest.approx(3.0)

    def test_points_beyond_reference_ignored(self):
        assert hypervolume_2d([P(5, 5)], (3, 3)) == 0.0

    def test_dominated_point_adds_nothing(self):
        base = hypervolume_2d([P(1, 1)], (4, 4))
        more = hypervolume_2d([P(1, 1), P(2, 2)], (4, 4))
        assert more == pytest.approx(base)

    @given(finite_points)
    @settings(max_examples=50)
    def test_monotone_under_union(self, raw):
        pts = [P(t, e) for t, e in raw]
        ref = (2e6, 2e6)
        part = pareto_front(pts[: len(pts) // 2 + 1])
        full = pareto_front(pts)
        assert hypervolume_2d(full, ref) >= hypervolume_2d(part, ref) - 1e-6


# -- spread -----------------------------------------------------------------


class TestFrontSpread:
    def test_degenerate(self):
        assert front_spread([P(1, 1)]) == (0.0, 0.0)

    def test_known_values(self):
        ts, es = front_spread([P(1.0, 2.0), P(1.1, 1.0)])
        assert ts == pytest.approx(0.1)
        assert es == pytest.approx(1.0)

    def test_zero_min_rejected(self):
        with pytest.raises(ValueError):
            front_spread([P(0.0, 1.0), P(1.0, 2.0)])
