"""Statistical test for nonfunctional relationships.

Fig. 4's central observation is that dynamic power is *not even a
function* of average CPU utilization: configurations at the same
utilization draw materially different power.  The witness-pair count
(:func:`repro.experiments.fig4_cpu_utilization.nonfunctionality_witnesses`)
demonstrates this; this module provides the principled version:

Bin the samples by the x variable; within each bin, a functional
relationship (plus measurement noise) bounds the y spread by the noise
scale.  The **nonfunctionality ratio** is the pooled within-bin
standard deviation of y divided by the y scale the measurement noise
explains.  A ratio ≲ 1 is consistent with a noisy function; a ratio
≫ 1 witnesses genuine multi-valuedness.  The verdict also reports the
worst bin, which localizes where the relation breaks (the paper's
"points with about 50% utilization").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NonfunctionalityVerdict", "nonfunctionality_test"]


@dataclass(frozen=True)
class NonfunctionalityVerdict:
    """Outcome of the binned multi-valuedness test.

    Attributes
    ----------
    ratio:
        Pooled within-bin relative y spread over the noise scale.
    worst_bin_center / worst_bin_spread:
        The x location and relative y spread of the worst bin.
    n_bins_used:
        Bins with ≥ 2 samples (others carry no spread information).
    nonfunctional:
        ``ratio > threshold`` — y is not a (noisy) function of x.
    threshold:
        Decision threshold used.
    """

    ratio: float
    worst_bin_center: float
    worst_bin_spread: float
    n_bins_used: int
    nonfunctional: bool
    threshold: float


def nonfunctionality_test(
    x: np.ndarray,
    y: np.ndarray,
    *,
    n_bins: int = 12,
    noise_scale: float = 0.025,
    threshold: float = 3.0,
) -> NonfunctionalityVerdict:
    """Test whether ``y`` is multi-valued in ``x`` beyond noise.

    Parameters
    ----------
    x, y:
        Samples of the candidate relationship (y > 0 required; spreads
        are relative).
    n_bins:
        Equal-width bins over the x range.
    noise_scale:
        Relative 1-sigma measurement noise of y — defaults to the
        paper's 2.5% protocol precision.
    threshold:
        Ratio above which the relation is declared nonfunctional.

    Raises
    ------
    ValueError
        On malformed inputs or when no bin holds two samples (the test
        has no power without repeated x values).
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError("x and y must be 1-D and equal length")
    if len(xa) < 4:
        raise ValueError("need at least 4 samples")
    if np.any(ya <= 0):
        raise ValueError("y must be positive (relative spreads)")
    if n_bins < 2:
        raise ValueError("need at least 2 bins")
    if noise_scale <= 0 or threshold <= 0:
        raise ValueError("noise_scale and threshold must be positive")

    lo, hi = xa.min(), xa.max()
    if hi <= lo:
        raise ValueError("x must span a nonzero range")
    edges = np.linspace(lo, hi, n_bins + 1)
    idx = np.clip(np.digitize(xa, edges) - 1, 0, n_bins - 1)

    spreads = []
    weights = []
    worst = (0.0, 0.0)  # (spread, center)
    for b in range(n_bins):
        mask = idx == b
        if mask.sum() < 2:
            continue
        vals = ya[mask]
        rel_spread = float(vals.std(ddof=1) / vals.mean())
        spreads.append(rel_spread**2)
        weights.append(mask.sum() - 1)
        if rel_spread > worst[0]:
            worst = (rel_spread, float(xa[mask].mean()))
    if not spreads:
        raise ValueError("no bin holds two samples; test has no power")

    pooled = float(
        np.sqrt(np.average(spreads, weights=weights))
    )
    ratio = pooled / noise_scale
    return NonfunctionalityVerdict(
        ratio=ratio,
        worst_bin_center=worst[1],
        worst_bin_spread=worst[0],
        n_bins_used=len(spreads),
        nonfunctional=ratio > threshold,
        threshold=threshold,
    )
