"""Telemetry core: hierarchical spans and a process-wide metrics registry.

The subsystem is zero-dependency (stdlib only) and built around one
invariant: **when telemetry is off, the instrumented hot paths pay
(almost) nothing**.  Every instrumentation site goes through the
module-level helpers (:func:`span`, :func:`count`, :func:`gauge`,
:func:`observe`), which check one boolean and return a shared no-op
object on the fast path — no allocation, no locking, no string
formatting (``tests/test_obs.py`` bounds the off-path cost at < 2% of
a vectorized sweep).

Design
------
* **Spans** are context managers with monotonic ``perf_counter_ns``
  timings, parent/child nesting via an explicit stack, and arbitrary
  attributes (device, N, backend, point counts).  Span ids are
  sequential integers assigned at *entry*, so the tree structure —
  ids, parents, names, attributes — is deterministic run-to-run;
  only the timestamps vary.
* **Metrics** live in a flat, process-wide registry under a stable,
  documented namespace (``docs/MODEL.md`` §6): counters (monotonic
  ints), gauges (last-write floats) and histograms
  (count/total/min/max summaries — enough for rates and spread
  without unbounded storage).
* **Sinks**: ``off`` (the default — nothing is recorded),
  ``summary`` (human-readable digest appended to stdout at command
  exit), ``jsonl:PATH`` (one JSON object per line: provenance,
  then spans in completion order, then the final metrics snapshot —
  the input of ``repro trace`` and ``repro perf``) and ``prom:PATH``
  (the final metrics snapshot in Prometheus textfile format for a
  node-exporter textfile collector — see
  :mod:`repro.obs.openmetrics`).

The registry is intentionally *not* thread-local: the sweep pipeline
is process-parallel, and worker-side measurements are aggregated into
the parent registry explicitly (:meth:`Telemetry.merge_counts`, see
``repro.sweep.engine``).
"""

from __future__ import annotations

import io
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "TELEMETRY_FORMAT",
    "Telemetry",
    "SpanRecord",
    "HistogramSummary",
    "configure",
    "get_telemetry",
    "set_telemetry",
    "span",
    "count",
    "gauge",
    "observe",
]

#: Schema tag of the JSONL event stream (``repro trace`` input).
TELEMETRY_FORMAT = "repro-telemetry/1"

#: Sink modes ``configure`` accepts (``jsonl``/``prom`` additionally
#: take a path).
MODES = ("off", "summary", "jsonl", "prom")


@dataclass
class SpanRecord:
    """One completed span: identity, position in the tree, timing.

    ``span_id``/``parent_id`` are sequential entry-order integers
    (root spans have ``parent_id`` None), so equality of everything
    except ``start_ns``/``duration_ns`` is the span-tree determinism
    contract.
    """

    span_id: int
    parent_id: int | None
    name: str
    depth: int
    start_ns: int
    duration_ns: int
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_event(self) -> dict[str, Any]:
        return {
            "event": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attrs": self.attrs,
        }


@dataclass
class HistogramSummary:
    """Bounded-memory distribution summary (count/total/min/max)."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class _NoopSpan:
    """Shared reentrant no-op context manager — the off fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager recording one span into its telemetry's log."""

    __slots__ = ("_tel", "_name", "_attrs", "_id", "_parent", "_depth", "_t0")

    def __init__(self, tel: "Telemetry", name: str, attrs: dict[str, Any]):
        self._tel = tel
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        tel = self._tel
        self._id = tel._next_span_id
        tel._next_span_id += 1
        stack = tel._span_stack
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        stack.append(self._id)
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> None:
        t1 = time.perf_counter_ns()
        tel = self._tel
        if tel._span_stack and tel._span_stack[-1] == self._id:
            tel._span_stack.pop()
        tel.spans.append(
            SpanRecord(
                span_id=self._id,
                parent_id=self._parent,
                name=self._name,
                depth=self._depth,
                start_ns=self._t0 - tel._epoch_ns,
                duration_ns=t1 - self._t0,
                attrs=self._attrs,
            )
        )

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. result counts)."""
        self._attrs.update(attrs)


class Telemetry:
    """One run's span log, metrics registry and provenance manifest."""

    def __init__(self, mode: str = "off", path: str | Path | None = None):
        if mode not in MODES:
            raise ValueError(
                f"unknown telemetry mode {mode!r}: expected one of "
                f"{', '.join(MODES)}"
            )
        if mode in ("jsonl", "prom") and path is None:
            raise ValueError(
                f"{mode} telemetry needs a path ({mode}:PATH)"
            )
        self.mode = mode
        self.path = Path(path) if path is not None else None
        self.enabled = mode != "off"
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, HistogramSummary] = {}
        self.manifest: dict[str, Any] | None = None
        self._span_stack: list[int] = []
        self._next_span_id = 1
        self._epoch_ns = time.perf_counter_ns()

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a nested span; a context manager either way."""
        if not self.enabled:
            return _NOOP_SPAN
        return _ActiveSpan(self, name, attrs)

    def count(self, name: str, value: int = 1) -> None:
        """Increment a monotonic counter."""
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a last-write-wins gauge."""
        if self.enabled:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to a histogram summary."""
        if self.enabled:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = HistogramSummary()
            hist.add(float(value))

    def merge_counts(self, counts: dict[str, int]) -> None:
        """Fold worker-side counter increments into this registry."""
        if self.enabled:
            for name, value in counts.items():
                self.counters[name] = self.counters.get(name, 0) + value

    def set_manifest(self, manifest: dict[str, Any]) -> None:
        """Attach the run-provenance manifest (see ``repro.obs.provenance``)."""
        if self.enabled:
            self.manifest = manifest

    # -- inspection ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The metrics registry as one JSON-ready mapping (sorted names)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }

    def structure(self) -> list[tuple[int, int | None, str, tuple]]:
        """The deterministic skeleton of the span tree (no timings).

        Two runs doing the same work must produce equal structures —
        the span-tree determinism contract the tests enforce.
        """
        return [
            (
                s.span_id,
                s.parent_id,
                s.name,
                tuple(sorted(s.attrs.items())),
            )
            for s in sorted(self.spans, key=lambda s: s.span_id)
        ]

    # -- sinks --------------------------------------------------------------

    def events(self) -> list[dict[str, Any]]:
        """The full event stream: header, provenance, spans, metrics."""
        out: list[dict[str, Any]] = [
            {"event": "header", "format": TELEMETRY_FORMAT}
        ]
        if self.manifest is not None:
            out.append({"event": "provenance", **self.manifest})
        out.extend(
            s.as_event()
            for s in sorted(self.spans, key=lambda s: s.span_id)
        )
        out.append({"event": "metrics", **self.snapshot()})
        return out

    def write_jsonl(self, path: str | Path | None = None) -> Path:
        """Write the event stream as one JSON object per line."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no jsonl path configured")
        buf = io.StringIO()
        for event in self.events():
            buf.write(json.dumps(event, sort_keys=True))
            buf.write("\n")
        target.write_text(buf.getvalue())
        return target

    def render_summary(self) -> str:
        """Human-readable digest: top spans by total time, key counters."""
        lines = ["-- telemetry summary --"]
        totals: dict[str, tuple[int, int]] = {}
        for s in self.spans:
            n, t = totals.get(s.name, (0, 0))
            totals[s.name] = (n + 1, t + s.duration_ns)
        for name, (n, t) in sorted(
            totals.items(), key=lambda kv: -kv[1][1]
        )[:12]:
            lines.append(f"  span {name:<32} x{n:<5} {t / 1e6:10.2f} ms")
        for name, value in sorted(self.counters.items()):
            lines.append(f"  counter {name:<36} {value}")
        for name, value in sorted(self.gauges.items()):
            lines.append(f"  gauge {name:<38} {value:.6g}")
        for name, hist in sorted(self.histograms.items()):
            lines.append(
                f"  hist {name:<39} n={hist.count} mean={hist.mean:.6g}"
            )
        if self.manifest is not None:
            lines.append(
                "  provenance "
                + " ".join(
                    f"{k}={self.manifest[k]}"
                    for k in ("git_sha", "model_version", "inputs_digest")
                    if k in self.manifest
                )
            )
        return "\n".join(lines)

    def write_prom(self, path: str | Path | None = None) -> Path:
        """Write the metrics snapshot as a Prometheus textfile."""
        from repro.obs.openmetrics import render_openmetrics

        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no prom path configured")
        target.write_text(
            render_openmetrics(self.snapshot(), manifest=self.manifest)
        )
        return target

    def flush(self) -> str | None:
        """Drain to the configured sink; returns summary text if any."""
        if self.mode == "jsonl":
            self.write_jsonl()
            return None
        if self.mode == "prom":
            self.write_prom()
            return None
        if self.mode == "summary":
            return self.render_summary()
        return None


#: The process-wide telemetry the module-level helpers delegate to.
_CURRENT = Telemetry("off")


def get_telemetry() -> Telemetry:
    """The active process-wide :class:`Telemetry`."""
    return _CURRENT


def set_telemetry(tel: Telemetry) -> Telemetry:
    """Install ``tel`` as the process-wide telemetry; returns it."""
    global _CURRENT
    _CURRENT = tel
    return tel


def configure(spec: str | None) -> Telemetry:
    """Parse a ``--telemetry`` spec and install the result.

    Accepted forms: ``off`` (or None), ``summary``, ``jsonl:PATH``.
    """
    if spec is None or spec == "off":
        return set_telemetry(Telemetry("off"))
    if spec == "summary":
        return set_telemetry(Telemetry("summary"))
    for mode in ("jsonl", "prom"):
        if spec.startswith(f"{mode}:"):
            path = spec[len(mode) + 1:]
            if not path:
                raise ValueError(
                    f"{mode} telemetry needs a path ({mode}:PATH)"
                )
            return set_telemetry(Telemetry(mode, path))
    raise ValueError(
        f"unknown telemetry spec {spec!r}: expected off, summary, "
        f"jsonl:PATH or prom:PATH"
    )


# -- module-level helpers (the instrumentation surface) ---------------------
#
# Hot paths call these instead of holding a Telemetry reference so a
# late `configure()` (the CLI) is picked up everywhere, and so the off
# fast path is a single global load + boolean test.

def span(name: str, **attrs: Any):
    """Open a span on the process-wide telemetry (no-op when off)."""
    tel = _CURRENT
    if not tel.enabled:
        return _NOOP_SPAN
    return _ActiveSpan(tel, name, attrs)


def count(name: str, value: int = 1) -> None:
    """Increment a process-wide counter (no-op when off)."""
    tel = _CURRENT
    if tel.enabled:
        tel.counters[name] = tel.counters.get(name, 0) + value


def gauge(name: str, value: float) -> None:
    """Set a process-wide gauge (no-op when off)."""
    tel = _CURRENT
    if tel.enabled:
        tel.gauges[name] = float(value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation (no-op when off)."""
    tel = _CURRENT
    if tel.enabled:
        tel.observe(name, value)
