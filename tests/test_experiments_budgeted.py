"""Tests for the budgeted-search study."""

from __future__ import annotations

import pytest

from repro.experiments import budgeted_search
from repro.machines import P100


class TestBudgetedSearch:
    @pytest.fixture(scope="class")
    def result(self):
        return budgeted_search.run(P100, n=8192, seed=0)

    def test_full_budget_is_exact(self, result):
        full = result.rows[-1]
        assert full.budget == result.space_size
        assert full.igd == pytest.approx(0.0, abs=1e-12)
        assert full.epsilon == pytest.approx(0.0, abs=1e-12)
        assert full.front_size == result.exhaustive_front_size

    def test_quality_improves_with_budget(self, result):
        epsilons = [r.epsilon for r in result.rows]
        assert epsilons[-1] <= epsilons[0]

    def test_half_budget_close_to_exact(self, result):
        half = next(r for r in result.rows if 0.45 <= r.budget_fraction <= 0.55)
        assert half.epsilon < 0.10  # within 10% of the exhaustive front

    def test_deterministic(self):
        a = budgeted_search.run(P100, n=4096, budget_fractions=(0.2,), seed=3)
        b = budgeted_search.run(P100, n=4096, budget_fractions=(0.2,), seed=3)
        assert a.rows[0].igd == b.rows[0].igd

    def test_render(self, result):
        out = result.render()
        assert "IGD" in out and "eps-indicator" in out
